#include "ncnas/nas/driver.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "ncnas/exec/utilization.hpp"

namespace ncnas::nas {

const char* strategy_name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kA3C: return "A3C";
    case SearchStrategy::kA2C: return "A2C";
    case SearchStrategy::kRandom: return "RDM";
    case SearchStrategy::kEvolution: return "EVO";
  }
  return "?";
}

std::vector<std::pair<double, float>> SearchResult::best_so_far() const {
  std::vector<std::pair<double, float>> out;
  out.reserve(evals.size());
  float best = -std::numeric_limits<float>::infinity();
  for (const EvalRecord& e : evals) {
    best = std::max(best, e.reward);
    out.emplace_back(e.time, best);
  }
  return out;
}

std::vector<EvalRecord> SearchResult::top_k(std::size_t k) const {
  std::map<std::string, EvalRecord> best_by_arch;
  for (const EvalRecord& e : evals) {
    if (e.timed_out) continue;
    const std::string key = space::arch_key(e.arch);
    const auto it = best_by_arch.find(key);
    if (it == best_by_arch.end() || e.reward > it->second.reward) {
      best_by_arch.insert_or_assign(key, e);
    }
  }
  std::vector<EvalRecord> out;
  out.reserve(best_by_arch.size());
  for (auto& [key, rec] : best_by_arch) out.push_back(rec);
  std::ranges::sort(out, [](const EvalRecord& a, const EvalRecord& b) {
    return a.reward > b.reward;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

namespace {

struct AgentState {
  std::size_t id = 0;
  std::optional<rl::Controller> controller;
  // Evolution strategy: aging population (FIFO of scored architectures).
  std::deque<std::pair<space::ArchEncoding, float>> population;
  tensor::Rng rng{0};
  std::uint64_t eval_seed = 0;
  std::unique_ptr<exec::CachedEvaluator> cache;
  std::vector<float> theta_pull;

  // Current in-flight batch.
  std::vector<rl::Rollout> rollouts;
  std::vector<space::ArchEncoding> archs;
  std::vector<EvalRecord> records;

  std::size_t cached_streak = 0;
  bool stopped = false;
};

struct Completion {
  double time;
  std::size_t seq;    // tiebreak: submission order
  std::size_t agent;
  bool operator>(const Completion& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

/// Pre-resolved instrument handles so the hot loop never touches the
/// registry maps. Only constructed when SearchConfig::telemetry is set; all
/// instrumentation sites are guarded on this, keeping the null path free.
struct Instruments {
  obs::Counter* evals;
  obs::Counter* cache_hits;
  obs::Counter* real_evals;
  obs::Counter* timeouts;
  obs::Counter* cycles;
  obs::Counter* ppo_updates;
  obs::Gauge* streak_min;
  obs::Histogram* cycle_latency;
  obs::Histogram* eval_sim;
  obs::TraceRecorder* trace;
  obs::Journal* journal;  ///< null unless Telemetry::enable_journal() was called

  explicit Instruments(obs::Telemetry& t) {
    obs::MetricsRegistry& m = t.metrics();
    evals = &m.counter("ncnas_evals_total");
    cache_hits = &m.counter("ncnas_cache_hits_total");
    real_evals = &m.counter("ncnas_real_evals_total");
    timeouts = &m.counter("ncnas_eval_timeouts_total");
    cycles = &m.counter("ncnas_agent_cycles_total");
    ppo_updates = &m.counter("ncnas_ppo_updates_total");
    streak_min = &m.gauge("ncnas_convergence_streak_min");
    cycle_latency = &m.histogram("ncnas_cycle_latency_seconds", obs::exp_buckets(4.0, 2.0, 14));
    eval_sim = &m.histogram("ncnas_eval_sim_duration_seconds", obs::exp_buckets(4.0, 2.0, 14));
    trace = &t.trace();
    journal = t.journal();
  }
};

}  // namespace

SearchDriver::SearchDriver(const space::SearchSpace& space, const data::Dataset& dataset,
                           SearchConfig config, tensor::ThreadPool* pool)
    : space_(&space), dataset_(&dataset), config_(std::move(config)), pool_(pool) {
  if (config_.cluster.num_agents == 0 || config_.cluster.workers_per_agent == 0) {
    throw std::invalid_argument("SearchDriver: agents and workers must be positive");
  }
  if (config_.batch_per_agent == 0) {
    config_.batch_per_agent = config_.cluster.workers_per_agent;
  }
}

SearchResult SearchDriver::run() {
  const std::size_t N = config_.cluster.num_agents;
  const std::size_t W = config_.cluster.workers_per_agent;
  const std::size_t M = config_.batch_per_agent;
  const bool rl_enabled = config_.strategy == SearchStrategy::kA3C ||
                          config_.strategy == SearchStrategy::kA2C;
  const bool evolution = config_.strategy == SearchStrategy::kEvolution;

  exec::TrainingEvaluator evaluator(*space_, *dataset_, config_.fidelity, config_.cost);
  exec::UtilizationMonitor monitor(config_.cluster.total_workers());
  std::optional<Instruments> inst;
  if (config_.telemetry != nullptr) {
    inst.emplace(*config_.telemetry);
    evaluator.set_telemetry(config_.telemetry);
    if (inst->journal != nullptr) {
      inst->journal->append(obs::JournalEventType::kRunStarted, 0.0, obs::kNoAgent,
                            {{"agents", static_cast<double>(N)},
                             {"workers", static_cast<double>(W)},
                             {"batch", static_cast<double>(M)},
                             {"wall_time_s", config_.wall_time_seconds},
                             {"strategy", static_cast<double>(config_.strategy)},
                             {"seed", static_cast<double>(config_.seed)}});
    }
  }

  // All agents start from the same policy parameters, held by the PS.
  std::optional<ParameterServer> ps;
  if (rl_enabled) {
    rl::Controller init(space_->arities(), config_.seed);
    ps.emplace(init.get_flat(),
               config_.strategy == SearchStrategy::kA2C ? ParameterServer::Mode::kSync
                                                        : ParameterServer::Mode::kAsync,
               N, config_.async_window);
    ps->set_telemetry(config_.telemetry);
  }

  tensor::Rng seeder(config_.seed);
  std::vector<AgentState> agents(N);
  for (std::size_t i = 0; i < N; ++i) {
    agents[i].id = i;
    agents[i].rng = seeder.split(1000 + i);
    agents[i].eval_seed = seeder.split(5000 + i).next_u64();
    agents[i].cache = std::make_unique<exec::CachedEvaluator>(evaluator);
    agents[i].cache->set_telemetry(config_.telemetry);
    if (rl_enabled) {
      agents[i].controller.emplace(space_->arities(), config_.seed + 17 * i);
      agents[i].controller->set_telemetry(config_.telemetry);
    }
  }

  SearchResult result;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> queue;
  std::size_t seq = 0;
  std::size_t real_evals = 0;
  bool budget_exhausted = false;
  double a2c_round_time = 0.0;
  double last_completion = 0.0;

  // ---- one agent cycle: sample M, evaluate, occupy workers, schedule ----
  const auto start_cycle = [&](AgentState& agent, double t) {
    if (t >= config_.wall_time_seconds || budget_exhausted) {
      agent.stopped = true;
      return;
    }
    if (rl_enabled) {
      agent.theta_pull = ps->pull(agent.id);
      agent.controller->set_flat(agent.theta_pull);
    }
    agent.rollouts.clear();
    agent.archs.clear();
    agent.records.clear();
    for (std::size_t m = 0; m < M; ++m) {
      if (rl_enabled) {
        agent.rollouts.push_back(agent.controller->sample(agent.rng));
        agent.archs.push_back(agent.rollouts.back().actions);
      } else if (evolution && agent.population.size() >= config_.evolution.population) {
        // Tournament selection over the aging window, then a single-gene
        // mutation (regularized-evolution child generation).
        const auto& pop = agent.population;
        std::size_t best_idx = agent.rng.uniform_int(pop.size());
        for (std::size_t round = 1; round < config_.evolution.tournament; ++round) {
          const std::size_t idx = agent.rng.uniform_int(pop.size());
          if (pop[idx].second > pop[best_idx].second) best_idx = idx;
        }
        space::ArchEncoding child = pop[best_idx].first;
        const std::size_t gene = agent.rng.uniform_int(child.size());
        const std::size_t arity = space_->decisions()[gene].arity;
        if (arity > 1) {
          std::uint16_t v = child[gene];
          while (v == child[gene]) {
            v = static_cast<std::uint16_t>(agent.rng.uniform_int(arity));
          }
          child[gene] = v;
        }
        agent.archs.push_back(std::move(child));
      } else {
        agent.archs.push_back(space_->random_arch(agent.rng));
      }
    }

    // Resolve against the agent's cache; farm unique misses out for real.
    std::vector<std::optional<exec::EvalResult>> results(M);
    std::vector<std::size_t> miss_index;           // batch position per unique miss
    std::unordered_set<std::string> miss_keys;
    for (std::size_t m = 0; m < M; ++m) {
      if (config_.use_cache) results[m] = agent.cache->lookup(agent.archs[m]);
      if (!results[m] && miss_keys.insert(space::arch_key(agent.archs[m])).second) {
        miss_index.push_back(m);
      }
    }
    std::vector<exec::EvalResult> fresh(miss_index.size());
    const auto eval_one = [&](std::size_t i) {
      fresh[i] = evaluator.evaluate(agent.archs[miss_index[i]], agent.eval_seed);
    };
    if (pool_ != nullptr && miss_index.size() > 1) {
      tensor::parallel_for(*pool_, miss_index.size(), eval_one);
    } else {
      for (std::size_t i = 0; i < miss_index.size(); ++i) eval_one(i);
    }
    for (std::size_t i = 0; i < miss_index.size(); ++i) {
      agent.cache->insert(agent.archs[miss_index[i]], fresh[i]);
      results[miss_index[i]] = fresh[i];  // first occurrence stays a real task
    }
    // Within-batch duplicates of a fresh miss read the cache result.
    for (std::size_t m = 0; m < M; ++m) {
      if (!results[m]) results[m] = agent.cache->lookup(agent.archs[m]);
    }

    // Worker occupancy: non-cached tasks dispatch onto the agent's W
    // dedicated nodes (earliest-free first); cached results cost nothing.
    std::vector<double> worker_free(W, t);
    double batch_done = t;
    for (std::size_t m = 0; m < M; ++m) {
      const exec::EvalResult& r = *results[m];
      EvalRecord rec;
      rec.reward = r.reward;
      rec.params = r.params;
      rec.sim_duration = r.sim_duration;
      rec.cache_hit = r.cache_hit;
      rec.timed_out = r.timed_out;
      rec.agent = agent.id;
      rec.arch = agent.archs[m];
      if (r.cache_hit) {
        rec.time = t;
        if (inst) {
          inst->trace->instant("eval_cached", "exec", t, static_cast<std::uint32_t>(agent.id),
                               {{"reward", rec.reward}});
        }
      } else {
        const auto slot = static_cast<std::size_t>(
            std::min_element(worker_free.begin(), worker_free.end()) - worker_free.begin());
        const double start = worker_free[slot];
        const double end = start + r.sim_duration;
        worker_free[slot] = end;
        monitor.add_busy_interval(start, end);
        rec.time = end;
        batch_done = std::max(batch_done, end);
        ++real_evals;
        if (inst) {
          inst->trace->span("eval", "exec", start, r.sim_duration,
                            static_cast<std::uint32_t>(agent.id),
                            {{"reward", rec.reward},
                             {"timed_out", rec.timed_out ? 1.0 : 0.0}});
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kEvalDispatched, start,
                                  static_cast<std::uint32_t>(agent.id),
                                  {{"duration_s", r.sim_duration},
                                   {"worker", static_cast<double>(slot)},
                                   {"train_wall_ms", r.train_wall_ms}});
          }
        }
      }
      agent.records.push_back(std::move(rec));
    }
    if (config_.max_evaluations != 0 && real_evals >= config_.max_evaluations) {
      budget_exhausted = true;
    }
    const double scheduled = std::max(batch_done, t + 1e-3);
    if (inst) {
      inst->cycles->inc();
      inst->cycle_latency->observe(scheduled - t);
      inst->trace->span("agent_cycle", "driver", t, scheduled - t,
                        static_cast<std::uint32_t>(agent.id),
                        {{"batch", static_cast<double>(M)},
                         {"misses", static_cast<double>(miss_index.size())}});
    }
    queue.push({scheduled, seq++, agent.id});
  };

  // ---- bootstrap: every agent starts at t = 0 ----
  for (AgentState& agent : agents) start_cycle(agent, 0.0);

  // ---- event loop over batch completions ----
  while (!queue.empty()) {
    const Completion done = queue.top();
    queue.pop();
    AgentState& agent = agents[done.agent];
    const double t = done.time;
    last_completion = std::max(last_completion, t);

    // Harvest the batch.
    bool all_cached = true;
    std::vector<float> rewards;
    rewards.reserve(agent.records.size());
    for (EvalRecord& rec : agent.records) {
      all_cached = all_cached && rec.cache_hit;
      if (rec.cache_hit) rec.time = t;  // resolved when the batch closes
      rewards.push_back(rec.reward);
      if (rec.cache_hit) ++result.cache_hits;
      if (rec.timed_out) ++result.timeouts;
      if (inst) {
        inst->evals->inc();
        if (rec.cache_hit) {
          inst->cache_hits->inc();
        } else {
          inst->real_evals->inc();
          inst->eval_sim->observe(rec.sim_duration);
        }
        if (rec.timed_out) inst->timeouts->inc();
        // Journal events are emitted at the same harvest point the counters
        // increment, with the record's own completion time, so a journal
        // replay reconciles with both the counters and SearchResult.evals.
        if (inst->journal != nullptr) {
          const auto aid = static_cast<std::uint32_t>(agent.id);
          if (rec.cache_hit) {
            inst->journal->append(obs::JournalEventType::kEvalCached, rec.time, aid,
                                  {{"reward", rec.reward},
                                   {"timed_out", rec.timed_out ? 1.0 : 0.0}});
          } else {
            inst->journal->append(obs::JournalEventType::kEvalFinished, rec.time, aid,
                                  {{"reward", rec.reward},
                                   {"duration_s", rec.sim_duration},
                                   {"timed_out", rec.timed_out ? 1.0 : 0.0},
                                   {"params", static_cast<double>(rec.params)}});
          }
          if (rec.timed_out) {
            inst->journal->append(obs::JournalEventType::kEvalTimeout, rec.time, aid,
                                  {{"duration_s", rec.sim_duration}});
          }
        }
      }
      result.evals.push_back(rec);
    }
    agent.cached_streak = all_cached ? agent.cached_streak + 1 : 0;
    if (inst && inst->journal != nullptr &&
        agent.cached_streak == config_.convergence_streak) {
      inst->journal->append(obs::JournalEventType::kAgentConverged, t,
                            static_cast<std::uint32_t>(agent.id),
                            {{"streak", static_cast<double>(agent.cached_streak)}});
    }
    if (inst) {
      std::size_t min_streak = agents[0].cached_streak;
      for (const AgentState& a : agents) min_streak = std::min(min_streak, a.cached_streak);
      inst->streak_min->set(static_cast<double>(min_streak));
    }

    if (config_.strategy == SearchStrategy::kEvolution) {
      for (const EvalRecord& rec : agent.records) {
        agent.population.emplace_back(rec.arch, rec.reward);
        if (agent.population.size() > config_.evolution.population) {
          agent.population.pop_front();  // aging: oldest individual dies
        }
      }
    }

    // Convergence: every agent keeps regenerating cached architectures.
    const bool converged = std::ranges::all_of(agents, [&](const AgentState& a) {
      return a.cached_streak >= config_.convergence_streak;
    });
    if (converged) {
      result.converged_early = true;
      result.end_time = t;
      break;
    }

    if (!rl_enabled) {
      start_cycle(agent, t + config_.agent_overhead_seconds);
      continue;
    }

    // Local PPO epochs, then exchange the parameter delta through the PS.
    const rl::PpoStats ppo_stats = agent.controller->ppo_update(
        agent.rollouts, rewards, config_.ppo, t, static_cast<std::uint32_t>(agent.id));
    ++result.ppo_updates;
    if (inst) {
      inst->ppo_updates->inc();
      inst->trace->instant("ppo_update", "rl", t, static_cast<std::uint32_t>(agent.id),
                           {{"policy_loss", ppo_stats.policy_loss},
                            {"value_loss", ppo_stats.value_loss},
                            {"entropy", ppo_stats.entropy},
                            {"approx_kl", ppo_stats.approx_kl}});
    }
    std::vector<float> delta = agent.controller->get_flat();
    for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= agent.theta_pull[i];

    if (config_.strategy == SearchStrategy::kA3C) {
      ps->submit(agent.id, delta, t);
      start_cycle(agent, t + config_.agent_overhead_seconds);
    } else {
      a2c_round_time = std::max(a2c_round_time, t);
      const bool round_complete = ps->submit(agent.id, delta, t);
      if (round_complete) {
        const double resume = a2c_round_time + config_.agent_overhead_seconds;
        a2c_round_time = 0.0;
        for (AgentState& a : agents) start_cycle(a, resume);
      }
    }
  }

  if (result.end_time == 0.0) {
    result.end_time = std::min(config_.wall_time_seconds, std::max(last_completion, 1.0));
  }

  // Order the record stream by completion time and drop post-deadline tails.
  std::ranges::stable_sort(result.evals, [](const EvalRecord& a, const EvalRecord& b) {
    return a.time < b.time;
  });
  std::erase_if(result.evals, [&](const EvalRecord& e) {
    return e.time > config_.wall_time_seconds;
  });

  std::unordered_set<std::string> unique;
  for (const EvalRecord& e : result.evals) unique.insert(space::arch_key(e.arch));
  result.unique_archs = unique.size();

  result.utilization = monitor.series(result.end_time, result.utilization_bucket);

  if (inst && inst->journal != nullptr) {
    float best = -std::numeric_limits<float>::infinity();
    for (const EvalRecord& e : result.evals) best = std::max(best, e.reward);
    inst->journal->append(
        obs::JournalEventType::kRunFinished, result.end_time, obs::kNoAgent,
        {{"end_time_s", result.end_time},
         {"evals", static_cast<double>(result.evals.size())},
         {"best_reward", result.evals.empty() ? 0.0 : static_cast<double>(best)},
         {"cache_hits", static_cast<double>(result.cache_hits)},
         {"timeouts", static_cast<double>(result.timeouts)},
         {"ppo_updates", static_cast<double>(result.ppo_updates)},
         {"converged", result.converged_early ? 1.0 : 0.0},
         {"wall_time_s", config_.wall_time_seconds}});
  }

  if (config_.telemetry != nullptr) {
    result.telemetry_enabled = true;
    result.telemetry =
        std::make_shared<const obs::TelemetrySnapshot>(config_.telemetry->snapshot());
  }
  return result;
}

}  // namespace ncnas::nas
