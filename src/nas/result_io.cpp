#include "ncnas/nas/result_io.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ncnas::nas {

namespace {
// v3: lazy layers own their init seed (weight values changed). The stats
// header line carries an optional trailing telemetry-enabled flag (written
// since the obs subsystem landed), optional fault counters (since the
// fault-injection harness landed), and optional checkpoint/resume counters
// (since the ckpt subsystem landed); each eval line carries optional
// trailing failed/attempts fields. The reader tolerates the absence of any
// of them, so v3 logs from before each addition still load.
constexpr const char* kMagic = "ncnas-search-log-v3";
}

void save_result(const std::string& path, const SearchResult& result,
                 const std::string& fingerprint) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_result: cannot open " + path);
  // Shortest-round-trip precision: the text form preserves every double and
  // float bit-exactly, so a log saved by a resumed process can be diffed
  // against the uninterrupted run's log byte-for-byte (the kill-and-resume
  // verification in CI does exactly that).
  out << std::setprecision(17);
  out << kMagic << '\n' << fingerprint << '\n';
  out << result.end_time << ' ' << result.converged_early << ' ' << result.cache_hits << ' '
      << result.timeouts << ' ' << result.unique_archs << ' ' << result.ppo_updates << ' '
      << result.utilization_bucket << ' ' << result.telemetry_enabled << ' ' << result.retries
      << ' ' << result.exhausted << ' ' << result.lost_results << ' '
      << result.crashed_workers << ' ' << result.dead_agents << ' '
      << result.checkpoints_written << ' ' << result.resumes << ' '
      << result.shared_cache_hits << ' ' << result.ladder_trainings << ' '
      << result.ladder_promotions << ' ' << result.ladder_warm_starts << ' '
      << result.ladder_rung_hits << '\n';
  out << result.utilization.size();
  for (double u : result.utilization) out << ' ' << u;
  out << '\n' << result.evals.size() << '\n';
  for (const EvalRecord& e : result.evals) {
    out << e.time << ' ' << e.reward << ' ' << e.params << ' ' << e.sim_duration << ' '
        << e.cache_hit << ' ' << e.timed_out << ' ' << e.agent;
    out << ' ' << e.arch.size();
    for (std::uint16_t a : e.arch) out << ' ' << a;
    out << ' ' << e.failed << ' ' << e.attempts << ' ' << e.shared_hit << ' ' << e.rung << '\n';
  }
  if (!out) throw std::runtime_error("save_result: write failed for " + path);
}

std::optional<SearchResult> load_result(const std::string& path,
                                        const std::string& fingerprint) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string magic, fp;
  std::getline(in, magic);
  std::getline(in, fp);
  if (magic != kMagic || fp != fingerprint) return std::nullopt;

  SearchResult res;
  std::size_t util_count = 0, eval_count = 0;
  {
    // The stats line is parsed as a whole line so the optional trailing
    // telemetry flag can't be confused with the utilization count below.
    std::string stats_line;
    std::getline(in, stats_line);
    std::istringstream stats(stats_line);
    stats >> res.end_time >> res.converged_early >> res.cache_hits >> res.timeouts >>
        res.unique_archs >> res.ppo_updates >> res.utilization_bucket;
    if (!stats) return std::nullopt;
    if (!(stats >> res.telemetry_enabled)) res.telemetry_enabled = false;
    // Optional fault counters (absent in pre-fault logs; the fields
    // zero-initialize, and once one read fails the rest stay at zero),
    // then optional checkpoint/resume counters (absent in pre-ckpt logs).
    stats >> res.retries >> res.exhausted >> res.lost_results >> res.crashed_workers >>
        res.dead_agents >> res.checkpoints_written >> res.resumes;
    // Optional shared-cache hit counter (absent in pre-serve logs), then
    // optional fidelity-ladder counters (absent in pre-ladder logs).
    stats >> res.shared_cache_hits;
    stats >> res.ladder_trainings >> res.ladder_promotions >> res.ladder_warm_starts >>
        res.ladder_rung_hits;
  }
  in >> util_count;
  res.utilization.resize(util_count);
  for (double& u : res.utilization) in >> u;
  in >> eval_count;
  {
    std::string rest;
    std::getline(in, rest);  // consume the remainder of the count line
  }
  if (!in) return std::nullopt;
  res.evals.resize(eval_count);
  // Eval records are parsed line-wise so the optional trailing failed /
  // attempts fields of fault-era logs can't bleed into the next record.
  for (EvalRecord& e : res.evals) {
    std::string line;
    if (!std::getline(in, line)) return std::nullopt;
    std::istringstream es(line);
    std::size_t arch_len = 0;
    es >> e.time >> e.reward >> e.params >> e.sim_duration >> e.cache_hit >> e.timed_out >>
        e.agent >> arch_len;
    if (!es) return std::nullopt;
    e.arch.resize(arch_len);
    for (std::uint16_t& a : e.arch) {
      unsigned v;
      es >> v;
      a = static_cast<std::uint16_t>(v);
    }
    if (!es) return std::nullopt;  // truncated / corrupt record
    unsigned failed = 0;
    if (es >> failed) {
      e.failed = failed != 0;
      if (!(es >> e.attempts)) e.attempts = 1;
      unsigned shared = 0;
      if (es >> shared) e.shared_hit = shared != 0;  // optional (post-serve logs)
      unsigned rung = 0;
      if (es >> rung) e.rung = rung;  // optional (post-ladder logs)
    }
  }
  return res;
}

SearchResult run_or_load(const std::string& dir, const std::string& tag,
                         const std::string& fingerprint,
                         const std::function<SearchResult()>& run) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + tag + ".log";
  if (auto cached = load_result(path, fingerprint)) return std::move(*cached);
  SearchResult res = run();
  save_result(path, res, fingerprint);
  return res;
}

std::string config_fingerprint(const SearchConfig& cfg, const std::string& space_name) {
  std::ostringstream os;
  os << space_name << '|' << strategy_name(cfg.strategy) << '|' << cfg.cluster.num_agents << 'x'
     << cfg.cluster.workers_per_agent << '|' << cfg.wall_time_seconds << '|'
     << cfg.fidelity.epochs << ',' << cfg.fidelity.subset_fraction << ','
     << cfg.fidelity.learning_rate << ',' << cfg.fidelity.batch_size << ','
     << cfg.fidelity.valid_fraction << '|' << cfg.cost.startup_seconds << ','
     << cfg.cost.seconds_per_megaunit << ',' << cfg.cost.jitter_frac << ','
     << cfg.cost.timeout_seconds << '|' << cfg.seed << '|' << cfg.batch_per_agent << '|'
     << cfg.agent_overhead_seconds << '|' << cfg.convergence_streak << '|'
     << cfg.max_evaluations << '|' << cfg.async_window << '|' << cfg.use_cache;
  if (cfg.strategy == SearchStrategy::kEvolution) {
    // Appended only for EVO so fingerprints of existing RL/RDM logs stay
    // stable across this addition.
    os << "|evo:" << cfg.evolution.population << ',' << cfg.evolution.tournament;
  }
  if (cfg.faults != nullptr && cfg.faults->enabled()) {
    // Appended only when the plan actually injects something: a null or
    // empty plan leaves the fingerprint — like the results — untouched, and
    // logs from different fault plans never alias.
    os << "|faults:" << cfg.faults->plan().fingerprint();
  }
  if (cfg.shared_cache != nullptr) {
    // A shared cache is result-affecting (hits skip training and worker
    // occupancy), so its presence marks the fingerprint; like the fault
    // marker, a null pointer leaves existing fingerprints untouched. The
    // tenant id is accounting only and deliberately absent.
    os << "|shared_cache:on";
  }
  if (cfg.ladder.enabled()) {
    // An enabled ladder replaces the flat fidelity schedule, so it marks the
    // fingerprint; the default (no rungs) leaves existing fingerprints — and
    // results — untouched.
    os << "|ladder:" << cfg.ladder.fingerprint();
  }
  return os.str();
}

}  // namespace ncnas::nas
