#include "ncnas/nas/result_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace ncnas::nas {

namespace {
// v3: lazy layers own their init seed (weight values changed). The stats
// header line carries an optional trailing telemetry-enabled flag (written
// since the obs subsystem landed); the reader tolerates its absence, so v3
// logs from before the flag still load.
constexpr const char* kMagic = "ncnas-search-log-v3";
}

void save_result(const std::string& path, const SearchResult& result,
                 const std::string& fingerprint) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_result: cannot open " + path);
  out << kMagic << '\n' << fingerprint << '\n';
  out << result.end_time << ' ' << result.converged_early << ' ' << result.cache_hits << ' '
      << result.timeouts << ' ' << result.unique_archs << ' ' << result.ppo_updates << ' '
      << result.utilization_bucket << ' ' << result.telemetry_enabled << '\n';
  out << result.utilization.size();
  for (double u : result.utilization) out << ' ' << u;
  out << '\n' << result.evals.size() << '\n';
  for (const EvalRecord& e : result.evals) {
    out << e.time << ' ' << e.reward << ' ' << e.params << ' ' << e.sim_duration << ' '
        << e.cache_hit << ' ' << e.timed_out << ' ' << e.agent;
    out << ' ' << e.arch.size();
    for (std::uint16_t a : e.arch) out << ' ' << a;
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_result: write failed for " + path);
}

std::optional<SearchResult> load_result(const std::string& path,
                                        const std::string& fingerprint) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string magic, fp;
  std::getline(in, magic);
  std::getline(in, fp);
  if (magic != kMagic || fp != fingerprint) return std::nullopt;

  SearchResult res;
  std::size_t util_count = 0, eval_count = 0;
  {
    // The stats line is parsed as a whole line so the optional trailing
    // telemetry flag can't be confused with the utilization count below.
    std::string stats_line;
    std::getline(in, stats_line);
    std::istringstream stats(stats_line);
    stats >> res.end_time >> res.converged_early >> res.cache_hits >> res.timeouts >>
        res.unique_archs >> res.ppo_updates >> res.utilization_bucket;
    if (!stats) return std::nullopt;
    if (!(stats >> res.telemetry_enabled)) res.telemetry_enabled = false;
  }
  in >> util_count;
  res.utilization.resize(util_count);
  for (double& u : res.utilization) in >> u;
  in >> eval_count;
  res.evals.resize(eval_count);
  for (EvalRecord& e : res.evals) {
    std::size_t arch_len = 0;
    in >> e.time >> e.reward >> e.params >> e.sim_duration >> e.cache_hit >> e.timed_out >>
        e.agent >> arch_len;
    e.arch.resize(arch_len);
    for (std::uint16_t& a : e.arch) {
      unsigned v;
      in >> v;
      a = static_cast<std::uint16_t>(v);
    }
  }
  if (!in) return std::nullopt;  // truncated / corrupt log
  return res;
}

SearchResult run_or_load(const std::string& dir, const std::string& tag,
                         const std::string& fingerprint,
                         const std::function<SearchResult()>& run) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + tag + ".log";
  if (auto cached = load_result(path, fingerprint)) return std::move(*cached);
  SearchResult res = run();
  save_result(path, res, fingerprint);
  return res;
}

std::string config_fingerprint(const SearchConfig& cfg, const std::string& space_name) {
  std::ostringstream os;
  os << space_name << '|' << strategy_name(cfg.strategy) << '|' << cfg.cluster.num_agents << 'x'
     << cfg.cluster.workers_per_agent << '|' << cfg.wall_time_seconds << '|'
     << cfg.fidelity.epochs << ',' << cfg.fidelity.subset_fraction << ','
     << cfg.fidelity.learning_rate << ',' << cfg.fidelity.batch_size << ','
     << cfg.fidelity.valid_fraction << '|' << cfg.cost.startup_seconds << ','
     << cfg.cost.seconds_per_megaunit << ',' << cfg.cost.jitter_frac << ','
     << cfg.cost.timeout_seconds << '|' << cfg.seed << '|' << cfg.batch_per_agent << '|'
     << cfg.agent_overhead_seconds << '|' << cfg.convergence_streak << '|'
     << cfg.max_evaluations << '|' << cfg.async_window << '|' << cfg.use_cache;
  if (cfg.strategy == SearchStrategy::kEvolution) {
    // Appended only for EVO so fingerprints of existing RL/RDM logs stay
    // stable across this addition.
    os << "|evo:" << cfg.evolution.population << ',' << cfg.evolution.tournament;
  }
  return os.str();
}

}  // namespace ncnas::nas
