// NT3 — synthetic stand-in for the tumor/normal RNA-seq classifier benchmark.
//
// Ground truth: two tissue classes, each defined by (a) a smooth global
// expression template and (b) a handful of short, position-jittered local
// motifs ("tumor signatures"). The motifs are what make 1-D convolutions the
// right inductive bias, as in the paper's manually designed NT3 CNN.
#include "ncnas/data/dataset.hpp"

#include <cmath>

#include "synth.hpp"

namespace ncnas::data {

using tensor::Rng;
using tensor::Tensor;

namespace {

struct World {
  std::vector<Tensor> templates;             // per-class [length]
  std::vector<std::vector<Tensor>> motifs;   // per-class list of [motif] patterns
  std::vector<std::vector<std::size_t>> anchor;  // nominal motif positions
};

World make_world(const Nt3Dims& dims, Rng& rng) {
  constexpr std::size_t kClasses = 2;
  constexpr std::size_t kMotifsPerClass = 3;
  World world;
  for (std::size_t c = 0; c < kClasses; ++c) {
    Tensor tpl({dims.length});
    // Smooth template: a few random low-frequency sinusoids.
    for (std::size_t h = 1; h <= 4; ++h) {
      const float amp = 0.3f * static_cast<float>(rng.normal());
      const float phase = static_cast<float>(rng.uniform(0.0, 6.28318));
      for (std::size_t p = 0; p < dims.length; ++p) {
        tpl[p] += amp * std::sin(static_cast<float>(h) * 6.28318f *
                                     static_cast<float>(p) / static_cast<float>(dims.length) +
                                 phase);
      }
    }
    world.templates.push_back(std::move(tpl));
    std::vector<Tensor> motifs;
    std::vector<std::size_t> anchors;
    for (std::size_t m = 0; m < kMotifsPerClass; ++m) {
      Tensor motif({dims.motif});
      for (float& v : motif.flat()) v = 1.5f * static_cast<float>(rng.normal());
      motifs.push_back(std::move(motif));
      anchors.push_back(static_cast<std::size_t>(rng.uniform_int(dims.length - 4 * dims.motif)) +
                        dims.motif);
    }
    world.motifs.push_back(std::move(motifs));
    world.anchor.push_back(std::move(anchors));
  }
  return world;
}

struct Split {
  Tensor x;
  Tensor y;
};

Split generate(std::size_t rows, const Nt3Dims& dims, const World& world, Rng& rng) {
  Split split;
  split.x = Tensor({rows, dims.length});
  split.y = Tensor({rows, 1});
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t cls = static_cast<std::size_t>(rng.uniform_int(2));
    split.y(i, 0) = static_cast<float>(cls);
    float* row = split.x.data() + i * dims.length;
    const Tensor& tpl = world.templates[cls];
    for (std::size_t p = 0; p < dims.length; ++p) {
      row[p] = tpl[p] + 0.35f * static_cast<float>(rng.normal());
    }
    // Stamp each class motif near its anchor with positional jitter, so only
    // translation-tolerant feature detectors pick it up reliably.
    const auto& motifs = world.motifs[cls];
    for (std::size_t m = 0; m < motifs.size(); ++m) {
      const std::size_t jitter = static_cast<std::size_t>(rng.uniform_int(2 * dims.motif));
      const std::size_t start = world.anchor[cls][m] + jitter - dims.motif;
      for (std::size_t p = 0; p < dims.motif && start + p < dims.length; ++p) {
        row[start + p] += motifs[m][p];
      }
    }
  }
  return split;
}

}  // namespace

Dataset make_nt3(std::uint64_t seed, const Nt3Dims& dims) {
  Rng rng(seed);
  const World world = make_world(dims, rng);
  Split train = generate(dims.train, dims, world, rng);
  Split valid = generate(dims.valid, dims, world, rng);

  Dataset ds;
  ds.name = "nt3";
  ds.input_names = {"rna-seq.expression"};
  detail::standardize(train.x, valid.x);
  ds.x_train.push_back(std::move(train.x));
  ds.y_train = std::move(train.y);
  ds.x_valid.push_back(std::move(valid.x));
  ds.y_valid = std::move(valid.y);
  ds.metric = nn::Metric::kAccuracy;
  ds.loss = nn::LossKind::kCrossEntropy;
  ds.batch_size = 20;  // the paper's NT3 batch size
  return ds;
}

}  // namespace ncnas::data
