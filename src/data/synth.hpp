// Internal helpers shared by the synthetic benchmark generators.
#pragma once

#include <vector>

#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::data::detail {

/// Random projection matrix [latent, out] with N(0, 1/sqrt(latent)) entries.
[[nodiscard]] tensor::Tensor projection(std::size_t latent, std::size_t out, tensor::Rng& rng);

/// One latent vector per row: [rows, latent], N(0, 1).
[[nodiscard]] tensor::Tensor latents(std::size_t rows, std::size_t latent, tensor::Rng& rng);

/// X = Z * P + noise_std * N(0,1); the observed high-dimensional features.
[[nodiscard]] tensor::Tensor observe(const tensor::Tensor& z, const tensor::Tensor& proj,
                                     float noise_std, tensor::Rng& rng);

/// Standardizes columns of train in place and applies the same affine map to
/// valid — mimics the preprocessing of the CANDLE pipelines.
void standardize(tensor::Tensor& train, tensor::Tensor& valid);

}  // namespace ncnas::data::detail
