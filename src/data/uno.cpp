// Uno — synthetic stand-in for the unified dose-response benchmark.
//
// Ground truth: a Hill dose-response curve per (cell, drug) pair. The drug's
// potency (ic50) and the pair's maximal effect derive nonlinearly from the
// cell and drug latents; descriptors and fingerprints are two different noisy
// views of the *same* drug latent, matching the paper's two drug inputs.
#include "ncnas/data/dataset.hpp"

#include <cmath>

#include "synth.hpp"

namespace ncnas::data {

using tensor::Rng;
using tensor::Tensor;

namespace {

struct Split {
  std::vector<Tensor> x;
  Tensor y;
};

Split generate(std::size_t rows, const UnoDims& dims, const Tensor& proj_rna,
               const Tensor& proj_desc, const Tensor& proj_fp, const Tensor& w_ic50,
               const Tensor& w_emax, Rng& rng) {
  const std::size_t k = dims.latent;
  const Tensor z_cell = detail::latents(rows, k, rng);
  const Tensor z_drug = detail::latents(rows, k, rng);
  Tensor dose({rows, 1});
  for (std::size_t i = 0; i < rows; ++i) {
    dose(i, 0) = static_cast<float>(rng.uniform(-2.0, 2.0));  // log10 concentration
  }

  Split split;
  split.x.push_back(detail::observe(z_cell, proj_rna, 0.05f, rng));
  split.x.push_back(dose);
  split.x.push_back(detail::observe(z_drug, proj_desc, 0.05f, rng));
  split.x.push_back(detail::observe(z_drug, proj_fp, 0.10f, rng));
  split.y = Tensor({rows, 1});
  for (std::size_t i = 0; i < rows; ++i) {
    float ic50 = 0.0f, emax = 0.0f;
    for (std::size_t a = 0; a < k; ++a) {
      ic50 += w_ic50(0, a) * z_drug(i, a) + w_ic50(1, a) * z_cell(i, a);
      emax += w_emax(0, a) * z_drug(i, a) * z_cell(i, a);
    }
    ic50 = std::tanh(ic50);                        // potency in [-1, 1] log-dose units
    emax = 0.5f + 0.5f * std::tanh(emax);          // maximal effect in [0, 1]
    const float slope = 2.5f;
    const float response =
        emax / (1.0f + std::exp(-slope * (dose(i, 0) - ic50)));  // Hill curve
    split.y(i, 0) = response + 0.03f * static_cast<float>(rng.normal());
  }
  return split;
}

}  // namespace

Dataset make_uno(std::uint64_t seed, const UnoDims& dims) {
  Rng rng(seed);
  const Tensor proj_rna = detail::projection(dims.latent, dims.rnaseq, rng);
  const Tensor proj_desc = detail::projection(dims.latent, dims.descriptors, rng);
  const Tensor proj_fp = detail::projection(dims.latent, dims.fingerprints, rng);
  Tensor w_ic50({2, dims.latent});
  Tensor w_emax({1, dims.latent});
  for (float& v : w_ic50.flat()) v = static_cast<float>(rng.normal()) * 0.7f;
  for (float& v : w_emax.flat()) v = static_cast<float>(rng.normal()) * 0.7f;

  Split train = generate(dims.train, dims, proj_rna, proj_desc, proj_fp, w_ic50, w_emax, rng);
  Split valid = generate(dims.valid, dims, proj_rna, proj_desc, proj_fp, w_ic50, w_emax, rng);

  Dataset ds;
  ds.name = "uno";
  ds.input_names = {"cell.rna-seq", "dose", "drug.descriptors", "drug.fingerprints"};
  // Standardize the high-dimensional views; the scalar dose stays raw (it is
  // already in a calibrated log scale, like the paper's single-drug study).
  detail::standardize(train.x[0], valid.x[0]);
  detail::standardize(train.x[2], valid.x[2]);
  detail::standardize(train.x[3], valid.x[3]);
  ds.x_train = std::move(train.x);
  ds.y_train = std::move(train.y);
  ds.x_valid = std::move(valid.x);
  ds.y_valid = std::move(valid.y);
  ds.metric = nn::Metric::kR2;
  ds.loss = nn::LossKind::kMse;
  ds.batch_size = 32;  // the paper's Uno batch size
  return ds;
}

}  // namespace ncnas::data
