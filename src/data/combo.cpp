// Combo — synthetic stand-in for the NCI-ALMANAC drug-pair screening data.
//
// Ground truth: each sample pairs a cell line (latent u) with two drugs
// (latents v1, v2). Growth percentage is a symmetric nonlinear function of
// (u, v1) and (u, v2) plus a synergy term coupling all three — the structure
// the paper's Combo DNN (shared drug submodel + concatenation) is built to
// capture. Observed features are noisy random projections of the latents,
// mimicking expression profiles (d=942 in the paper) and drug descriptors
// (d=3,820), scaled per DESIGN.md.
#include "ncnas/data/dataset.hpp"

#include <cmath>

#include "synth.hpp"

namespace ncnas::data {

using tensor::Rng;
using tensor::Tensor;

namespace {

/// Per-drug sensitivity: a random *teacher network* — kTeacherUnits tanh
/// units over the concatenated (cell, drug) latents. A sufficiently deep and
/// wide student architecture can represent this function almost exactly, so
/// good NAS candidates reach high R2 after post-training while shallow or
/// degenerate candidates cannot — the reward landscape the paper's search
/// exploits. `teacher` is [kTeacherUnits, 2*latent + 1] (weights + output).
constexpr std::size_t kTeacherUnits = 16;

float drug_effect(const Tensor& z_cell, const Tensor& z_drug, const Tensor& teacher,
                  std::size_t row, std::size_t latent) {
  float out = 0.0f;
  for (std::size_t j = 0; j < kTeacherUnits; ++j) {
    float pre = 0.0f;
    for (std::size_t a = 0; a < latent; ++a) {
      pre += teacher(j, a) * z_cell(row, a) + teacher(j, latent + a) * z_drug(row, a);
    }
    out += teacher(j, 2 * latent) * std::tanh(pre / std::sqrt(2.0f * latent));
  }
  return out / std::sqrt(static_cast<float>(kTeacherUnits));
}

/// Synergy: drugs interact more strongly when their latents align.
float synergy(const Tensor& z1, const Tensor& z2, std::size_t row, std::size_t latent) {
  float dot = 0.0f;
  for (std::size_t a = 0; a < latent; ++a) dot += z1(row, a) * z2(row, a);
  return std::tanh(0.5f * dot / std::sqrt(static_cast<float>(latent)));
}

/// Additive main effect of the cell line — the "easy" part of the response
/// that even shallow models pick up, giving the reward landscape a floor
/// above chance for reasonable architectures.
float cell_main_effect(const Tensor& z_cell, const Tensor& w, std::size_t row,
                       std::size_t latent) {
  float acc = 0.0f;
  for (std::size_t a = 0; a < latent; ++a) acc += w(0, a) * z_cell(row, a);
  return acc / std::sqrt(static_cast<float>(latent));
}

struct Split {
  std::vector<Tensor> x;
  Tensor y;
};

Split generate(std::size_t rows, const ComboDims& dims, const Tensor& proj_expr,
               const Tensor& proj_drug, const Tensor& teacher, const Tensor& w_cell,
               Rng& rng) {
  const std::size_t k = dims.latent;
  const Tensor z_cell = detail::latents(rows, k, rng);
  const Tensor z_d1 = detail::latents(rows, k, rng);
  const Tensor z_d2 = detail::latents(rows, k, rng);

  Split split;
  split.x.push_back(detail::observe(z_cell, proj_expr, 0.05f, rng));
  split.x.push_back(detail::observe(z_d1, proj_drug, 0.05f, rng));
  split.x.push_back(detail::observe(z_d2, proj_drug, 0.05f, rng));
  split.y = Tensor({rows, 1});
  for (std::size_t i = 0; i < rows; ++i) {
    const float e1 = drug_effect(z_cell, z_d1, teacher, i, k);
    const float e2 = drug_effect(z_cell, z_d2, teacher, i, k);
    const float syn = synergy(z_d1, z_d2, i, k);
    const float lin = cell_main_effect(z_cell, w_cell, i, k);
    split.y(i, 0) = 0.6f * (e1 + e2) + 0.4f * syn + 0.5f * lin +
                    0.05f * static_cast<float>(rng.normal());
  }
  return split;
}

}  // namespace

Dataset make_combo(std::uint64_t seed, const ComboDims& dims) {
  Rng rng(seed);
  // Fixed world: projections and the cell-drug coupling are shared by the
  // train and validation splits (they define the underlying biology).
  const Tensor proj_expr = detail::projection(dims.latent, dims.expression, rng);
  const Tensor proj_drug = detail::projection(dims.latent, dims.descriptors, rng);
  Tensor teacher({kTeacherUnits, 2 * dims.latent + 1});
  for (float& v : teacher.flat()) v = static_cast<float>(rng.normal());
  Tensor w_cell({1, dims.latent});
  for (float& v : w_cell.flat()) v = static_cast<float>(rng.normal());

  Split train = generate(dims.train, dims, proj_expr, proj_drug, teacher, w_cell, rng);
  Split valid = generate(dims.valid, dims, proj_expr, proj_drug, teacher, w_cell, rng);

  Dataset ds;
  ds.name = "combo";
  ds.input_names = {"cell.expression", "drug1.descriptors", "drug2.descriptors"};
  for (std::size_t i = 0; i < train.x.size(); ++i) {
    detail::standardize(train.x[i], valid.x[i]);
  }
  ds.x_train = std::move(train.x);
  ds.y_train = std::move(train.y);
  ds.x_valid = std::move(valid.x);
  ds.y_valid = std::move(valid.y);
  ds.metric = nn::Metric::kR2;
  ds.loss = nn::LossKind::kMse;
  ds.batch_size = 256;  // the paper's Combo batch size
  return ds;
}

}  // namespace ncnas::data
