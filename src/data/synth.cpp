#include "synth.hpp"

#include <cmath>

#include "ncnas/tensor/ops.hpp"

namespace ncnas::data::detail {

using tensor::Rng;
using tensor::Tensor;

Tensor projection(std::size_t latent, std::size_t out, Rng& rng) {
  Tensor p({latent, out});
  const float scale = 1.0f / std::sqrt(static_cast<float>(latent));
  for (float& v : p.flat()) v = static_cast<float>(rng.normal()) * scale;
  return p;
}

Tensor latents(std::size_t rows, std::size_t latent, Rng& rng) {
  Tensor z({rows, latent});
  for (float& v : z.flat()) v = static_cast<float>(rng.normal());
  return z;
}

Tensor observe(const Tensor& z, const Tensor& proj, float noise_std, Rng& rng) {
  Tensor x = tensor::matmul(z, proj);
  for (float& v : x.flat()) v += noise_std * static_cast<float>(rng.normal());
  return x;
}

void standardize(Tensor& train, Tensor& valid) {
  const std::size_t rows = train.dim(0), cols = train.dim(1);
  for (std::size_t j = 0; j < cols; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < rows; ++i) mean += train(i, j);
    mean /= static_cast<double>(rows);
    double var = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      const double d = train(i, j) - mean;
      var += d * d;
    }
    const double std_dev = std::sqrt(var / static_cast<double>(rows));
    const float inv = std_dev > 1e-9 ? static_cast<float>(1.0 / std_dev) : 1.0f;
    const float m = static_cast<float>(mean);
    for (std::size_t i = 0; i < rows; ++i) train(i, j) = (train(i, j) - m) * inv;
    for (std::size_t i = 0; i < valid.dim(0); ++i) valid(i, j) = (valid(i, j) - m) * inv;
  }
}

}  // namespace ncnas::data::detail
