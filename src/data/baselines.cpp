#include "ncnas/data/baselines.hpp"

#include <stdexcept>

#include "ncnas/nn/layers.hpp"

namespace ncnas::data {

using nn::Act;
using nn::Graph;

namespace {

/// Appends a feed-forward stack of `depth` relu dense layers; returns the
/// last node id and collects the created layers when `mirror_from` is given.
std::size_t dense_stack(Graph& g, std::size_t from, std::size_t depth, std::size_t width,
                        tensor::Rng& rng) {
  std::size_t prev = from;
  for (std::size_t i = 0; i < depth; ++i) {
    prev = g.add(std::make_unique<nn::Dense>(width, Act::kRelu, rng), {prev});
  }
  return prev;
}

}  // namespace

Graph combo_baseline(const Dataset& ds, tensor::Rng& rng, const BaselineDims& dims) {
  if (ds.input_count() != 3) throw std::invalid_argument("combo_baseline: expects 3 inputs");
  Graph g;
  const std::size_t expr = g.add_input(ds.input_names[0], {ds.input_dim(0)});
  const std::size_t drug1 = g.add_input(ds.input_names[1], {ds.input_dim(1)});
  const std::size_t drug2 = g.add_input(ds.input_names[2], {ds.input_dim(2)});

  const std::size_t cell_top = dense_stack(g, expr, 3, dims.hidden, rng);

  // Shared drug submodel: build three dense layers for drug 1, then mirror
  // the exact parameter slots for drug 2 (the paper's weight sharing).
  std::vector<const nn::Layer*> shared_layers;
  std::size_t d1 = drug1;
  for (std::size_t i = 0; i < 3; ++i) {
    auto layer = std::make_unique<nn::Dense>(dims.hidden, Act::kRelu, rng);
    shared_layers.push_back(layer.get());
    d1 = g.add(std::move(layer), {d1});
  }
  std::size_t d2 = drug2;
  for (const nn::Layer* donor : shared_layers) {
    d2 = g.add(nn::clone_shared(*donor), {d2});
  }

  const std::size_t joined = g.add(std::make_unique<nn::Concat>(), {cell_top, d1, d2});
  const std::size_t head = dense_stack(g, joined, 3, dims.hidden, rng);
  const std::size_t out = g.add(std::make_unique<nn::Dense>(1, Act::kLinear, rng), {head});
  g.set_output(out);
  return g;
}

Graph uno_baseline(const Dataset& ds, tensor::Rng& rng, const BaselineDims& dims) {
  if (ds.input_count() != 4) throw std::invalid_argument("uno_baseline: expects 4 inputs");
  Graph g;
  const std::size_t rna = g.add_input(ds.input_names[0], {ds.input_dim(0)});
  const std::size_t dose = g.add_input(ds.input_names[1], {ds.input_dim(1)});
  const std::size_t desc = g.add_input(ds.input_names[2], {ds.input_dim(2)});
  const std::size_t fp = g.add_input(ds.input_names[3], {ds.input_dim(3)});

  const std::size_t rna_top = dense_stack(g, rna, 3, dims.hidden, rng);
  const std::size_t desc_top = dense_stack(g, desc, 3, dims.hidden, rng);
  const std::size_t fp_top = dense_stack(g, fp, 3, dims.hidden, rng);

  const std::size_t joined =
      g.add(std::make_unique<nn::Concat>(), {rna_top, desc_top, fp_top, dose});
  const std::size_t head = dense_stack(g, joined, 3, dims.hidden, rng);
  const std::size_t out = g.add(std::make_unique<nn::Dense>(1, Act::kLinear, rng), {head});
  g.set_output(out);
  return g;
}

Graph nt3_baseline(const Dataset& ds, tensor::Rng& rng, const BaselineDims& dims) {
  if (ds.input_count() != 1) throw std::invalid_argument("nt3_baseline: expects 1 input");
  Graph g;
  const std::size_t in = g.add_input(ds.input_names[0], {ds.input_dim(0)});
  const std::size_t seq = g.add(std::make_unique<nn::Reshape1D>(), {in});
  std::size_t prev = g.add(std::make_unique<nn::Conv1D>(dims.nt3_filters, 20, rng), {seq});
  prev = g.add(std::make_unique<nn::Activation>(Act::kRelu), {prev});
  prev = g.add(std::make_unique<nn::MaxPool1D>(1), {prev});
  prev = g.add(std::make_unique<nn::Conv1D>(dims.nt3_filters, 10, rng), {prev});
  prev = g.add(std::make_unique<nn::Activation>(Act::kRelu), {prev});
  prev = g.add(std::make_unique<nn::MaxPool1D>(10), {prev});
  prev = g.add(std::make_unique<nn::Flatten>(), {prev});
  prev = g.add(std::make_unique<nn::Dense>(dims.nt3_dense1, Act::kRelu, rng), {prev});
  prev = g.add(std::make_unique<nn::Dropout>(0.1f), {prev});
  prev = g.add(std::make_unique<nn::Dense>(dims.nt3_dense2, Act::kRelu, rng), {prev});
  prev = g.add(std::make_unique<nn::Dropout>(0.1f), {prev});
  const std::size_t out = g.add(std::make_unique<nn::Dense>(2, Act::kSoftmax, rng), {prev});
  g.set_output(out);
  return g;
}

Graph baseline_for(const Dataset& ds, tensor::Rng& rng, const BaselineDims& dims) {
  if (ds.name == "combo") return combo_baseline(ds, rng, dims);
  if (ds.name == "uno") return uno_baseline(ds, rng, dims);
  if (ds.name == "nt3") return nt3_baseline(ds, rng, dims);
  throw std::invalid_argument("baseline_for: unknown dataset '" + ds.name + "'");
}

}  // namespace ncnas::data
