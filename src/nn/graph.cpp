#include "ncnas/nn/graph.hpp"

#include <sstream>
#include <stdexcept>

#include "ncnas/nn/layers.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {

using tensor::Tensor;

std::size_t Graph::add_input(std::string name, FeatShape shape) {
  const std::size_t id = nodes_.size();
  Node node;
  node.layer = std::make_unique<Input>(std::move(name), std::move(shape));
  nodes_.push_back(std::move(node));
  input_ids_.push_back(id);
  output_id_ = id;
  return id;
}

std::size_t Graph::add(LayerPtr layer, std::vector<std::size_t> inputs) {
  if (layer == nullptr) throw std::invalid_argument("Graph::add: null layer");
  const std::size_t id = nodes_.size();
  for (std::size_t in : inputs) {
    if (in >= id) {
      throw std::invalid_argument("Graph::add: input id " + std::to_string(in) +
                                  " is not an existing node (topological order required)");
    }
  }
  for (std::size_t in : inputs) nodes_[in].consumers.push_back(id);
  Node node;
  node.layer = std::move(layer);
  node.inputs = std::move(inputs);
  nodes_.push_back(std::move(node));
  output_id_ = id;
  return id;
}

void Graph::set_output(std::size_t node_id) {
  if (node_id >= nodes_.size()) throw std::invalid_argument("Graph::set_output: bad node id");
  output_id_ = node_id;
  has_output_ = true;
}

FeatShape Graph::output_shape() const {
  std::vector<FeatShape> shapes(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<FeatShape> in;
    in.reserve(node.inputs.size());
    for (std::size_t src : node.inputs) in.push_back(shapes[src]);
    shapes[i] = node.layer->output_shape(in);
  }
  return shapes[output_id_];
}

Tensor Graph::forward(std::span<const Tensor> inputs, ForwardCtx& ctx) {
  if (inputs.size() != input_ids_.size()) {
    throw std::invalid_argument("Graph::forward: expected " + std::to_string(input_ids_.size()) +
                                " inputs, got " + std::to_string(inputs.size()));
  }
  NCNAS_PROF_SCOPE("graph/forward");
  // Per-op names are only materialized (kind() returns by value) when a
  // profiler is installed; an empty name makes the scope a no-op.
  const bool profiled = obs::profiling_enabled();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    const std::string op_name = profiled ? "op/" + node.layer->kind() : std::string();
    obs::ProfileScope op_scope(op_name);
    std::vector<const Tensor*> in;
    if (auto* input_layer = dynamic_cast<Input*>(node.layer.get())) {
      // Feed the externally supplied tensor for this input's position.
      std::size_t pos = 0;
      while (input_ids_[pos] != i) ++pos;
      const Tensor& fed = inputs[pos];
      const FeatShape& fs = input_layer->feat_shape();
      tensor::Shape expected{fed.dim(0)};
      expected.insert(expected.end(), fs.begin(), fs.end());
      fed.require_shape(expected, "Graph::forward input");
      in.push_back(&fed);
    } else {
      in.reserve(node.inputs.size());
      for (std::size_t src : node.inputs) in.push_back(&nodes_[src].output);
    }
    node.output = node.layer->forward(in, ctx);
  }
  return nodes_[output_id_].output;
}

void Graph::backward(const Tensor& grad_output) {
  NCNAS_PROF_SCOPE("graph/backward");
  // Reset per-node gradient accumulators; count live consumers reachable from
  // the output so dead branches are skipped.
  for (Node& node : nodes_) {
    node.grad = Tensor();
    node.pending_consumers = 0;
  }
  // A node participates if it is an ancestor of the output node.
  std::vector<bool> live(nodes_.size(), false);
  live[output_id_] = true;
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    if (!live[i]) continue;
    for (std::size_t src : nodes_[i].inputs) live[src] = true;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!live[i]) continue;
    for (std::size_t consumer : nodes_[i].consumers) {
      if (live[consumer]) ++nodes_[i].pending_consumers;
    }
  }

  const bool profiled = obs::profiling_enabled();
  nodes_[output_id_].grad = grad_output;
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    Node& node = nodes_[i];
    if (!live[i] || node.grad.empty()) continue;
    const std::string op_name = profiled ? "op/" + node.layer->kind() : std::string();
    obs::ProfileScope op_scope(op_name);
    std::vector<Tensor> input_grads = node.layer->backward(node.grad);
    if (dynamic_cast<Input*>(node.layer.get()) != nullptr) continue;
    if (input_grads.size() != node.inputs.size()) {
      throw std::logic_error("Graph::backward: layer '" + node.layer->kind() +
                             "' returned wrong number of input grads");
    }
    for (std::size_t j = 0; j < node.inputs.size(); ++j) {
      Node& src = nodes_[node.inputs[j]];
      if (src.grad.empty()) {
        src.grad = std::move(input_grads[j]);
      } else {
        tensor::add_inplace(src.grad, input_grads[j]);
      }
    }
  }
}

std::vector<ParamPtr> Graph::parameters() const {
  std::vector<ParamPtr> all;
  for (const Node& node : nodes_) {
    const auto ps = node.layer->parameters();
    all.insert(all.end(), ps.begin(), ps.end());
  }
  return unique_params(all);
}

std::size_t Graph::param_count() const { return unique_param_count(parameters()); }

void Graph::zero_grad() {
  for (const ParamPtr& p : parameters()) p->zero_grad();
}

std::string Graph::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    os << '#' << i << ' ' << nodes_[i].layer->describe();
    if (!nodes_[i].inputs.empty()) {
      os << "  <-";
      for (std::size_t in : nodes_[i].inputs) os << ' ' << in;
    }
    if (i == output_id_) os << "  [output]";
    os << '\n';
  }
  return os.str();
}

}  // namespace ncnas::nn
