#include "ncnas/nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace ncnas::nn {

using tensor::Tensor;

LossValue mse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: pred shape " + tensor::to_string(pred.shape()) +
                                " vs target " + tensor::to_string(target.shape()));
  }
  LossValue out;
  out.grad = Tensor(pred.shape());
  const std::size_t n = pred.size();
  double acc = 0.0;
  const float inv_n = 2.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    out.grad[i] = inv_n * d;
  }
  out.loss = static_cast<float>(acc / static_cast<double>(n));
  return out;
}

LossValue cross_entropy_loss(const Tensor& probs, const std::vector<std::size_t>& target_index) {
  if (probs.rank() != 2 || probs.dim(0) != target_index.size()) {
    throw std::invalid_argument("cross_entropy_loss: probs must be [batch, classes] matching "
                                "target count");
  }
  const std::size_t batch = probs.dim(0), classes = probs.dim(1);
  LossValue out;
  out.grad = Tensor(probs.shape());
  constexpr float kEps = 1e-7f;
  double acc = 0.0;
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t cls = target_index[i];
    if (cls >= classes) throw std::invalid_argument("cross_entropy_loss: class id out of range");
    const float p = std::max(probs(i, cls), kEps);
    acc -= std::log(p);
    out.grad(i, cls) = -inv_b / p;
  }
  out.loss = static_cast<float>(acc / static_cast<double>(batch));
  return out;
}

LossValue compute_loss(LossKind kind, const Tensor& pred, const Tensor& target) {
  switch (kind) {
    case LossKind::kMse:
      return mse_loss(pred, target);
    case LossKind::kCrossEntropy: {
      std::vector<std::size_t> idx(target.dim(0));
      for (std::size_t i = 0; i < idx.size(); ++i) {
        idx[i] = static_cast<std::size_t>(target(i, 0));
      }
      return cross_entropy_loss(pred, idx);
    }
  }
  throw std::logic_error("compute_loss: unknown kind");
}

}  // namespace ncnas::nn
