#include "ncnas/nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "ncnas/nn/init.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {

using tensor::Shape;
using tensor::Tensor;

const tensor::Tensor& single_input(std::span<const tensor::Tensor* const> inputs,
                                   const char* what) {
  if (inputs.size() != 1 || inputs[0] == nullptr) {
    throw std::invalid_argument(std::string(what) + ": expects exactly one input, got " +
                                std::to_string(inputs.size()));
  }
  return *inputs[0];
}

const FeatShape& single_shape(std::span<const FeatShape> in, const char* what) {
  if (in.size() != 1) {
    throw std::invalid_argument(std::string(what) + ": expects exactly one input shape, got " +
                                std::to_string(in.size()));
  }
  return in[0];
}

const char* act_name(Act a) {
  switch (a) {
    case Act::kLinear: return "linear";
    case Act::kRelu: return "relu";
    case Act::kTanh: return "tanh";
    case Act::kSigmoid: return "sigmoid";
    case Act::kSoftmax: return "softmax";
  }
  return "?";
}

Tensor apply_act(Act a, const Tensor& z) {
  Tensor y = z;
  apply_act_inplace(a, y);
  return y;
}

void apply_act_inplace(Act a, Tensor& y) {
  // Pointwise activations run through parallel_elems / parallel_rows: each
  // element (or row, for softmax) has one writer and no cross-chunk data
  // flow, so the bytes are the serial loop's bytes at any thread count.
  float* py = y.data();
  switch (a) {
    case Act::kLinear:
      break;
    case Act::kRelu:
      tensor::parallel_elems(y.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) py[i] = std::max(py[i], 0.0f);
      });
      break;
    case Act::kTanh:
      tensor::parallel_elems(y.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) py[i] = std::tanh(py[i]);
      });
      break;
    case Act::kSigmoid:
      tensor::parallel_elems(y.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) py[i] = 1.0f / (1.0f + std::exp(-py[i]));
      });
      break;
    case Act::kSoftmax: {
      if (y.rank() != 2) throw std::invalid_argument("softmax: expects rank-2 logits");
      const std::size_t m = y.dim(0), n = y.dim(1);
      tensor::parallel_rows(m, n, [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          float* row = py + i * n;
          const float mx = *std::max_element(row, row + n);
          float denom = 0.0f;
          for (std::size_t j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - mx);
            denom += row[j];
          }
          for (std::size_t j = 0; j < n; ++j) row[j] /= denom;
        }
      });
      break;
    }
  }
}

Tensor act_backward(Act a, const Tensor& grad_y, const Tensor& y) {
  Tensor g = grad_y;
  act_backward_inplace(a, g, y);
  return g;
}

void act_backward_inplace(Act a, Tensor& g, const Tensor& y) {
  float* pg = g.data();
  const float* py = y.data();
  switch (a) {
    case Act::kLinear:
      break;
    case Act::kRelu:
      tensor::parallel_elems(g.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          if (py[i] <= 0.0f) pg[i] = 0.0f;
        }
      });
      break;
    case Act::kTanh:
      tensor::parallel_elems(g.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) pg[i] *= 1.0f - py[i] * py[i];
      });
      break;
    case Act::kSigmoid:
      tensor::parallel_elems(g.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) pg[i] *= py[i] * (1.0f - py[i]);
      });
      break;
    case Act::kSoftmax: {
      // dz_j = y_j * (dy_j - sum_k dy_k * y_k), per row.
      const std::size_t m = g.dim(0), n = g.dim(1);
      tensor::parallel_rows(m, n, [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          const float* yr = py + i * n;
          float* gr = pg + i * n;
          float s = 0.0f;
          for (std::size_t j = 0; j < n; ++j) s += gr[j] * yr[j];
          for (std::size_t j = 0; j < n; ++j) gr[j] = yr[j] * (gr[j] - s);
        }
      });
      break;
    }
  }
}

// --- Input ------------------------------------------------------------------

FeatShape Input::output_shape(std::span<const FeatShape> in) const {
  if (!in.empty()) throw std::invalid_argument("input: takes no graph inputs");
  return shape_;
}

Tensor Input::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  // The graph executor feeds the fed tensor as the sole "input".
  return single_input(inputs, "input");
}

std::vector<Tensor> Input::backward(const Tensor& grad_out) { return {grad_out}; }

std::string Input::describe() const {
  return "input '" + name_ + "' " + tensor::to_string(shape_);
}

// --- Identity ---------------------------------------------------------------

FeatShape Identity::output_shape(std::span<const FeatShape> in) const {
  return single_shape(in, "identity");
}

Tensor Identity::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  return single_input(inputs, "identity");
}

std::vector<Tensor> Identity::backward(const Tensor& grad_out) { return {grad_out}; }

// --- Dense ------------------------------------------------------------------

Dense::Dense(std::size_t units, Act act, tensor::Rng& rng)
    : units_(units), act_(act), init_seed_(rng.next_u64()),
      slot_(std::make_shared<Slot>()) {
  if (units == 0) throw std::invalid_argument("dense: units must be positive");
}

Dense::Dense(const Dense& donor, share_tag_t)
    : units_(donor.units_), act_(donor.act_), init_seed_(donor.init_seed_),
      slot_(donor.slot_), shared_(true) {}

void Dense::ensure_params(std::size_t in_dim) {
  if (slot_->w) {
    if (slot_->w->value.dim(0) != in_dim) {
      throw std::invalid_argument("dense: input width " + std::to_string(in_dim) +
                                  " does not match weights of width " +
                                  std::to_string(slot_->w->value.dim(0)));
    }
    return;
  }
  Tensor w({in_dim, units_});
  tensor::Rng rng(init_seed_);
  glorot_uniform(w, in_dim, units_, rng);
  slot_->w = std::make_shared<Parameter>("dense.w", std::move(w));
  slot_->b = std::make_shared<Parameter>("dense.b", Tensor({units_}));
}

FeatShape Dense::output_shape(std::span<const FeatShape> in) const {
  const FeatShape& s = single_shape(in, "dense");
  if (s.size() != 1) {
    throw std::invalid_argument("dense: expects rank-1 features, got " + tensor::to_string(s));
  }
  return {units_};
}

Tensor Dense::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  const Tensor& x = single_input(inputs, "dense");
  ensure_params(x.dim(1));
  // Scratch discipline: x_/y_ reuse their buffers across steps (copy-assign
  // and reset() keep capacity), gemm writes straight into y_, and the
  // activation runs in place — steady-state forward allocates nothing
  // beyond the returned copy.
  x_ = x;
  y_.reset({x.dim(0), units_});
  tensor::gemm(x, slot_->w->value, y_);
  tensor::add_row_bias(y_, slot_->b->value);
  apply_act_inplace(act_, y_);
  return y_;
}

std::vector<Tensor> Dense::backward(const Tensor& grad_out) {
  gz_ = grad_out;
  act_backward_inplace(act_, gz_, y_);
  // dW += X^T gz ; db += colsum(gz) ; dX = gz W^T
  dw_.reset({x_.dim(1), units_});
  tensor::gemm_tn(x_, gz_, dw_);
  tensor::add_inplace(slot_->w->grad, dw_);
  tensor::accumulate_col_sums(gz_, slot_->b->grad);
  Tensor dx({x_.dim(0), x_.dim(1)});
  tensor::gemm_nt(gz_, slot_->w->value, dx);
  return {std::move(dx)};
}

std::vector<ParamPtr> Dense::parameters() const {
  if (!slot_->w) return {};
  return {slot_->w, slot_->b};
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "dense(" << units_ << ", " << act_name(act_) << (shared_ ? ", shared" : "") << ")";
  return os.str();
}

// --- Activation ---------------------------------------------------------------

FeatShape Activation::output_shape(std::span<const FeatShape> in) const {
  return single_shape(in, "activation");
}

Tensor Activation::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  y_ = single_input(inputs, "activation");  // copy-assign reuses capacity
  apply_act_inplace(act_, y_);
  return y_;
}

std::vector<Tensor> Activation::backward(const Tensor& grad_out) {
  return {act_backward(act_, grad_out, y_)};
}

std::string Activation::describe() const {
  return std::string("activation(") + act_name(act_) + ")";
}

// --- Dropout ------------------------------------------------------------------

Dropout::Dropout(float rate) : rate_(rate) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("dropout: rate must be in [0, 1)");
  }
}

FeatShape Dropout::output_shape(std::span<const FeatShape> in) const {
  return single_shape(in, "dropout");
}

Tensor Dropout::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx& ctx) {
  const Tensor& x = single_input(inputs, "dropout");
  if (!ctx.training || rate_ == 0.0f) {
    masked_ = false;
    return x;
  }
  if (ctx.rng == nullptr) {
    throw std::invalid_argument("dropout: training forward requires ForwardCtx::rng");
  }
  mask_.reset(x.shape());
  const float keep = 1.0f - rate_;
  const float inv_keep = 1.0f / keep;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float m = ctx.rng->uniform() < keep ? inv_keep : 0.0f;
    mask_[i] = m;
    y[i] *= m;
  }
  masked_ = true;
  return y;
}

std::vector<Tensor> Dropout::backward(const Tensor& grad_out) {
  if (!masked_) return {grad_out};
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return {std::move(g)};
}

std::string Dropout::describe() const {
  std::ostringstream os;
  os << "dropout(" << rate_ << ")";
  return os.str();
}

// --- Conv1D -------------------------------------------------------------------

Conv1D::Conv1D(std::size_t filters, std::size_t kernel, tensor::Rng& rng)
    : filters_(filters), kernel_(kernel), init_seed_(rng.next_u64()),
      slot_(std::make_shared<Slot>()) {
  if (filters == 0 || kernel == 0) {
    throw std::invalid_argument("conv1d: filters and kernel must be positive");
  }
}

Conv1D::Conv1D(const Conv1D& donor, share_tag_t)
    : filters_(donor.filters_), kernel_(donor.kernel_), init_seed_(donor.init_seed_),
      slot_(donor.slot_), shared_(true) {}

void Conv1D::ensure_params(std::size_t in_channels) {
  const std::size_t fan_in = kernel_ * in_channels;
  if (slot_->w) {
    if (slot_->w->value.dim(0) != fan_in) {
      throw std::invalid_argument("conv1d: input channels do not match shared weights");
    }
    return;
  }
  Tensor w({fan_in, filters_});
  tensor::Rng rng(init_seed_);
  glorot_uniform(w, fan_in, filters_, rng);
  slot_->w = std::make_shared<Parameter>("conv1d.w", std::move(w));
  slot_->b = std::make_shared<Parameter>("conv1d.b", Tensor({filters_}));
}

FeatShape Conv1D::output_shape(std::span<const FeatShape> in) const {
  const FeatShape& s = single_shape(in, "conv1d");
  if (s.size() != 2) {
    throw std::invalid_argument("conv1d: expects [length, channels] features, got " +
                                tensor::to_string(s));
  }
  if (s[0] < kernel_) {
    throw std::invalid_argument("conv1d: input length " + std::to_string(s[0]) +
                                " shorter than kernel " + std::to_string(kernel_));
  }
  return {s[0] - kernel_ + 1, filters_};
}

Tensor Conv1D::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  const Tensor& x = single_input(inputs, "conv1d");
  if (x.rank() != 3) throw std::invalid_argument("conv1d: expects rank-3 batch input");
  const std::size_t batch = x.dim(0), len = x.dim(1), cin = x.dim(2);
  if (len < kernel_) throw std::invalid_argument("conv1d: input shorter than kernel");
  ensure_params(cin);
  x_ = x;
  const std::size_t out_len = len - kernel_ + 1;
  Tensor y({batch, out_len, filters_});
  const float* pw = slot_->w->value.data();
  const float* pb = slot_->b->value.data();
  // Batch items are independent (disjoint output rows), so the batch loop
  // parallelizes under the kernel determinism rule. No zero-operand skip on
  // xv: it made FLOPs data-dependent and masked NaN in the weights (0 * NaN
  // must stay NaN) — see the kernel NaN-semantics note in tensor/ops.hpp.
  tensor::parallel_rows(batch, out_len * kernel_ * cin, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      for (std::size_t p = 0; p < out_len; ++p) {
        float* yrow = y.data() + (b * out_len + p) * filters_;
        for (std::size_t f = 0; f < filters_; ++f) yrow[f] = pb[f];
        // Window [p, p + kernel) flattened over (offset, channel) pairs.
        const float* xwin = x.data() + (b * len + p) * cin;
        for (std::size_t t = 0; t < kernel_ * cin; ++t) {
          const float xv = xwin[t];
          const float* wrow = pw + t * filters_;
          for (std::size_t f = 0; f < filters_; ++f) yrow[f] += xv * wrow[f];
        }
      }
    }
  });
  return y;
}

std::vector<Tensor> Conv1D::backward(const Tensor& grad_out) {
  const std::size_t batch = x_.dim(0), len = x_.dim(1), cin = x_.dim(2);
  const std::size_t out_len = len - kernel_ + 1;
  Tensor dx(x_.shape());
  float* pdx = dx.data();
  float* pdw = slot_->w->grad.data();
  float* pdb = slot_->b->grad.data();
  const float* pw = slot_->w->value.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < out_len; ++p) {
      const float* grow = grad_out.data() + (b * out_len + p) * filters_;
      for (std::size_t f = 0; f < filters_; ++f) pdb[f] += grow[f];
      const float* xwin = x_.data() + (b * len + p) * cin;
      float* dxwin = pdx + (b * len + p) * cin;
      for (std::size_t t = 0; t < kernel_ * cin; ++t) {
        const float* wrow = pw + t * filters_;
        float* dwrow = pdw + t * filters_;
        const float xv = xwin[t];
        float acc = 0.0f;
        for (std::size_t f = 0; f < filters_; ++f) {
          const float g = grow[f];
          dwrow[f] += xv * g;
          acc += wrow[f] * g;
        }
        dxwin[t] += acc;
      }
    }
  }
  return {std::move(dx)};
}

std::vector<ParamPtr> Conv1D::parameters() const {
  if (!slot_->w) return {};
  return {slot_->w, slot_->b};
}

std::string Conv1D::describe() const {
  std::ostringstream os;
  os << "conv1d(" << filters_ << " filters, k=" << kernel_ << (shared_ ? ", shared" : "") << ")";
  return os.str();
}

// --- MaxPool1D ------------------------------------------------------------------

MaxPool1D::MaxPool1D(std::size_t size) : size_(size) {
  if (size == 0) throw std::invalid_argument("maxpool1d: size must be positive");
}

FeatShape MaxPool1D::output_shape(std::span<const FeatShape> in) const {
  const FeatShape& s = single_shape(in, "maxpool1d");
  if (s.size() != 2) {
    throw std::invalid_argument("maxpool1d: expects [length, channels] features, got " +
                                tensor::to_string(s));
  }
  const std::size_t out_len = std::max<std::size_t>(1, s[0] / size_);
  return {out_len, s[1]};
}

Tensor MaxPool1D::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  const Tensor& x = single_input(inputs, "maxpool1d");
  if (x.rank() != 3) throw std::invalid_argument("maxpool1d: expects rank-3 batch input");
  const std::size_t batch = x.dim(0), len = x.dim(1), ch = x.dim(2);
  in_shape_ = x.shape();
  const std::size_t window = std::min(size_, len);
  const std::size_t out_len = std::max<std::size_t>(1, len / size_);
  Tensor y({batch, out_len, ch});
  argmax_.assign(y.size(), 0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t p = 0; p < out_len; ++p) {
      const std::size_t start = p * size_;
      for (std::size_t c = 0; c < ch; ++c) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t t = 0; t < window && start + t < len; ++t) {
          const std::size_t idx = (b * len + start + t) * ch + c;
          if (x[idx] > best) {
            best = x[idx];
            best_idx = idx;
          }
        }
        const std::size_t out_idx = (b * out_len + p) * ch + c;
        y[out_idx] = best;
        argmax_[out_idx] = best_idx;
      }
    }
  }
  return y;
}

std::vector<Tensor> MaxPool1D::backward(const Tensor& grad_out) {
  Tensor dx(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) dx[argmax_[i]] += grad_out[i];
  return {std::move(dx)};
}

std::string MaxPool1D::describe() const {
  std::ostringstream os;
  os << "maxpool1d(" << size_ << ")";
  return os.str();
}

// --- Flatten --------------------------------------------------------------------

FeatShape Flatten::output_shape(std::span<const FeatShape> in) const {
  const FeatShape& s = single_shape(in, "flatten");
  return {tensor::numel(s)};
}

Tensor Flatten::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  const Tensor& x = single_input(inputs, "flatten");
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

std::vector<Tensor> Flatten::backward(const Tensor& grad_out) {
  return {grad_out.reshaped(in_shape_)};
}

// --- Reshape1D ------------------------------------------------------------------

FeatShape Reshape1D::output_shape(std::span<const FeatShape> in) const {
  const FeatShape& s = single_shape(in, "reshape1d");
  if (s.size() != 1) {
    throw std::invalid_argument("reshape1d: expects rank-1 features, got " + tensor::to_string(s));
  }
  return {s[0], 1};
}

Tensor Reshape1D::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  const Tensor& x = single_input(inputs, "reshape1d");
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.dim(1), 1});
}

std::vector<Tensor> Reshape1D::backward(const Tensor& grad_out) {
  return {grad_out.reshaped(in_shape_)};
}

// --- Concat ---------------------------------------------------------------------

FeatShape Concat::output_shape(std::span<const FeatShape> in) const {
  if (in.empty()) throw std::invalid_argument("concat: requires at least one input");
  std::size_t total = 0;
  for (const FeatShape& s : in) {
    if (s.size() != 1) {
      throw std::invalid_argument("concat: expects rank-1 features, got " + tensor::to_string(s));
    }
    total += s[0];
  }
  return {total};
}

Tensor Concat::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  if (inputs.empty()) throw std::invalid_argument("concat: requires at least one input");
  const std::size_t batch = inputs[0]->dim(0);
  widths_.clear();
  std::size_t total = 0;
  for (const Tensor* t : inputs) {
    if (t->rank() != 2 || t->dim(0) != batch) {
      throw std::invalid_argument("concat: inputs must be rank-2 with equal batch size");
    }
    widths_.push_back(t->dim(1));
    total += t->dim(1);
  }
  Tensor y({batch, total});
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = y.data() + b * total;
    for (const Tensor* t : inputs) {
      const std::size_t w = t->dim(1);
      const float* src = t->data() + b * w;
      std::copy(src, src + w, row);
      row += w;
    }
  }
  return y;
}

std::vector<Tensor> Concat::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0);
  const std::size_t total = grad_out.dim(1);
  std::vector<Tensor> grads;
  grads.reserve(widths_.size());
  std::size_t offset = 0;
  for (std::size_t w : widths_) {
    Tensor g({batch, w});
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = grad_out.data() + b * total + offset;
      std::copy(src, src + w, g.data() + b * w);
    }
    grads.push_back(std::move(g));
    offset += w;
  }
  return grads;
}

// --- Add ------------------------------------------------------------------------

FeatShape Add::output_shape(std::span<const FeatShape> in) const {
  if (in.empty()) throw std::invalid_argument("add: requires at least one input");
  std::size_t widest = 0;
  for (const FeatShape& s : in) {
    if (s.size() != 1) {
      throw std::invalid_argument("add: expects rank-1 features, got " + tensor::to_string(s));
    }
    widest = std::max(widest, s[0]);
  }
  return {widest};
}

Tensor Add::forward(std::span<const tensor::Tensor* const> inputs, ForwardCtx&) {
  if (inputs.empty()) throw std::invalid_argument("add: requires at least one input");
  const std::size_t batch = inputs[0]->dim(0);
  widths_.clear();
  std::size_t widest = 0;
  for (const Tensor* t : inputs) {
    if (t->rank() != 2 || t->dim(0) != batch) {
      throw std::invalid_argument("add: inputs must be rank-2 with equal batch size");
    }
    widths_.push_back(t->dim(1));
    widest = std::max(widest, t->dim(1));
  }
  Tensor y({batch, widest});
  for (const Tensor* t : inputs) {
    const std::size_t w = t->dim(1);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = t->data() + b * w;
      float* dst = y.data() + b * widest;
      for (std::size_t j = 0; j < w; ++j) dst[j] += src[j];
    }
  }
  return y;
}

std::vector<Tensor> Add::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0);
  const std::size_t widest = grad_out.dim(1);
  std::vector<Tensor> grads;
  grads.reserve(widths_.size());
  for (std::size_t w : widths_) {
    Tensor g({batch, w});
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = grad_out.data() + b * widest;
      std::copy(src, src + w, g.data() + b * w);
    }
    grads.push_back(std::move(g));
  }
  return grads;
}

// --- clone_shared ------------------------------------------------------------------

LayerPtr clone_shared(const Layer& layer) {
  if (const auto* d = dynamic_cast<const Dense*>(&layer)) {
    return std::make_unique<Dense>(*d, share_tag);
  }
  if (const auto* c = dynamic_cast<const Conv1D*>(&layer)) {
    return std::make_unique<Conv1D>(*c, share_tag);
  }
  if (const auto* dr = dynamic_cast<const Dropout*>(&layer)) {
    return std::make_unique<Dropout>(dr->rate());
  }
  if (const auto* a = dynamic_cast<const Activation*>(&layer)) {
    return std::make_unique<Activation>(a->activation());
  }
  if (dynamic_cast<const Identity*>(&layer) != nullptr) {
    return std::make_unique<Identity>();
  }
  throw std::invalid_argument("clone_shared: unsupported layer kind '" + layer.kind() + "'");
}

}  // namespace ncnas::nn
