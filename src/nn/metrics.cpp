#include "ncnas/nn/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ncnas::nn {

using tensor::Tensor;

float r2_score(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("r2_score: shape mismatch");
  }
  const std::size_t n = pred.size();
  if (n == 0) return 0.0f;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += target[i];
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = static_cast<double>(pred[i]) - target[i];
    const double t = static_cast<double>(target[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0f : 0.0f;
  return static_cast<float>(1.0 - ss_res / ss_tot);
}

float accuracy_score(const Tensor& pred, const Tensor& target) {
  if (pred.rank() != 2 || target.rank() != 2 || pred.dim(0) != target.dim(0)) {
    throw std::invalid_argument("accuracy_score: pred [batch, classes], target [batch, 1]");
  }
  const std::size_t batch = pred.dim(0), classes = pred.dim(1);
  if (batch == 0) return 0.0f;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = pred.data() + i * classes;
    const std::size_t argmax = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (argmax == static_cast<std::size_t>(target(i, 0))) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(batch);
}

float compute_metric(Metric m, const Tensor& pred, const Tensor& target) {
  switch (m) {
    case Metric::kR2: return r2_score(pred, target);
    case Metric::kAccuracy: return accuracy_score(pred, target);
  }
  throw std::logic_error("compute_metric: unknown metric");
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kR2: return "R2";
    case Metric::kAccuracy: return "ACC";
  }
  return "?";
}

}  // namespace ncnas::nn
