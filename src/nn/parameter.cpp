#include "ncnas/nn/parameter.hpp"

#include <unordered_set>

namespace ncnas::nn {

std::vector<ParamPtr> unique_params(const std::vector<ParamPtr>& params) {
  std::vector<ParamPtr> out;
  out.reserve(params.size());
  std::unordered_set<const Parameter*> seen;
  for (const ParamPtr& p : params) {
    if (p && seen.insert(p.get()).second) out.push_back(p);
  }
  return out;
}

std::size_t unique_param_count(const std::vector<ParamPtr>& params) {
  std::size_t total = 0;
  for (const ParamPtr& p : unique_params(params)) total += p->size();
  return total;
}

}  // namespace ncnas::nn
