#include "ncnas/nn/init.hpp"

#include <cmath>

namespace ncnas::nn {

void glorot_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    tensor::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-limit, limit));
}

void he_normal(tensor::Tensor& w, std::size_t fan_in, tensor::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void scaled_normal(tensor::Tensor& w, float stddev, tensor::Rng& rng) {
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace ncnas::nn
