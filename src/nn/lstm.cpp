#include "ncnas/nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "ncnas/nn/init.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {

using tensor::Tensor;

namespace {

float sigmoidf(float v) { return 1.0f / (1.0f + std::exp(-v)); }

}  // namespace

LstmCell::LstmCell(std::size_t input_dim, std::size_t hidden_dim, tensor::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("LstmCell: dims must be positive");
  }
  Tensor wx({input_dim, 4 * hidden_dim});
  glorot_uniform(wx, input_dim, 4 * hidden_dim, rng);
  Tensor wh({hidden_dim, 4 * hidden_dim});
  scaled_normal(wh, 1.0f / std::sqrt(static_cast<float>(hidden_dim)), rng);
  Tensor b({4 * hidden_dim});
  // Forget-gate bias 1.0: the standard trick for gradient flow early on.
  for (std::size_t j = hidden_dim; j < 2 * hidden_dim; ++j) b[j] = 1.0f;
  wx_ = std::make_shared<Parameter>("lstm.wx", std::move(wx));
  wh_ = std::make_shared<Parameter>("lstm.wh", std::move(wh));
  b_ = std::make_shared<Parameter>("lstm.b", std::move(b));
}

LstmState LstmCell::initial_state(std::size_t batch) const {
  return {Tensor({batch, hidden_dim_}), Tensor({batch, hidden_dim_})};
}

void LstmCell::gates(const Tensor& x, const LstmState& prev, Tensor& z) const {
  const std::size_t batch = x.dim(0);
  // z = x Wx + h_prev Wh + b, built on scratch tensors: gemm overwrites z
  // directly (it zero-starts every accumulation chain, so this is bitwise
  // the old zeros-then-add form — gemm also never produces -0, so the
  // dropped `0 +` term can't flip a sign bit) and zh_ is the only partial.
  z.reset({batch, 4 * hidden_dim_});
  tensor::gemm(x, wx_->value, z);
  zh_.reset({batch, 4 * hidden_dim_});
  tensor::gemm(prev.h, wh_->value, zh_);
  tensor::add_inplace(z, zh_);
  tensor::add_row_bias(z, b_->value);
}

LstmState LstmCell::step(const Tensor& x, const LstmState& prev) {
  const std::size_t batch = x.dim(0);
  Tensor& z = z_;
  gates(x, prev, z);

  StepCache cache;
  cache.x = x;
  cache.h_prev = prev.h;
  cache.c_prev = prev.c;
  cache.i = Tensor({batch, hidden_dim_});
  cache.f = Tensor({batch, hidden_dim_});
  cache.g = Tensor({batch, hidden_dim_});
  cache.o = Tensor({batch, hidden_dim_});
  cache.c_new = Tensor({batch, hidden_dim_});
  cache.tanh_c = Tensor({batch, hidden_dim_});

  LstmState next{Tensor({batch, hidden_dim_}), Tensor({batch, hidden_dim_})};
  const std::size_t H = hidden_dim_;
  // Row-parallel: every (r, j) cell is written by exactly one chunk and its
  // value depends only on that cell's inputs, so bytes match the serial loop.
  tensor::parallel_rows(batch, 4 * H, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      const float* zr = z.data() + r * 4 * H;
      for (std::size_t j = 0; j < H; ++j) {
        const float iv = sigmoidf(zr[j]);
        const float fv = sigmoidf(zr[H + j]);
        const float gv = std::tanh(zr[2 * H + j]);
        const float ov = sigmoidf(zr[3 * H + j]);
        const float cv = fv * prev.c(r, j) + iv * gv;
        const float tc = std::tanh(cv);
        cache.i(r, j) = iv;
        cache.f(r, j) = fv;
        cache.g(r, j) = gv;
        cache.o(r, j) = ov;
        cache.c_new(r, j) = cv;
        cache.tanh_c(r, j) = tc;
        next.c(r, j) = cv;
        next.h(r, j) = ov * tc;
      }
    }
  });
  cache_.push_back(std::move(cache));
  return next;
}

LstmState LstmCell::step_nograd(const Tensor& x, const LstmState& prev) const {
  const std::size_t batch = x.dim(0);
  Tensor& z = z_;
  gates(x, prev, z);
  LstmState next{Tensor({batch, hidden_dim_}), Tensor({batch, hidden_dim_})};
  const std::size_t H = hidden_dim_;
  tensor::parallel_rows(batch, 4 * H, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      const float* zr = z.data() + r * 4 * H;
      for (std::size_t j = 0; j < H; ++j) {
        const float iv = sigmoidf(zr[j]);
        const float fv = sigmoidf(zr[H + j]);
        const float gv = std::tanh(zr[2 * H + j]);
        const float ov = sigmoidf(zr[3 * H + j]);
        const float cv = fv * prev.c(r, j) + iv * gv;
        next.c(r, j) = cv;
        next.h(r, j) = ov * std::tanh(cv);
      }
    }
  });
  return next;
}

Tensor LstmCell::backward_step(const Tensor& grad_h, const Tensor& grad_c,
                               Tensor& grad_h_prev, Tensor& grad_c_prev) {
  if (cache_.empty()) throw std::logic_error("LstmCell::backward_step: cache empty");
  StepCache cache = std::move(cache_.back());
  cache_.pop_back();

  const std::size_t batch = cache.x.dim(0);
  const std::size_t H = hidden_dim_;
  // dz_/dwx_/dwh_ are member scratch and grad_*_prev reuse the caller's
  // buffers via reset(); every element is overwritten below.
  dz_.reset({batch, 4 * H});
  Tensor& dz = dz_;
  grad_c_prev.reset({batch, H});
  tensor::parallel_rows(batch, 4 * H, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      float* dzr = dz.data() + r * 4 * H;
      for (std::size_t j = 0; j < H; ++j) {
        const float dh = grad_h(r, j);
        const float o = cache.o(r, j);
        const float tc = cache.tanh_c(r, j);
        const float dc = grad_c(r, j) + dh * o * (1.0f - tc * tc);
        const float i = cache.i(r, j);
        const float f = cache.f(r, j);
        const float g = cache.g(r, j);
        const float do_ = dh * tc;
        const float di = dc * g;
        const float df = dc * cache.c_prev(r, j);
        const float dg = dc * i;
        dzr[j] = di * i * (1.0f - i);
        dzr[H + j] = df * f * (1.0f - f);
        dzr[2 * H + j] = dg * (1.0f - g * g);
        dzr[3 * H + j] = do_ * o * (1.0f - o);
        grad_c_prev(r, j) = dc * f;
      }
    }
  });

  // Parameter grads.
  dwx_.reset({input_dim_, 4 * H});
  tensor::gemm_tn(cache.x, dz, dwx_);
  tensor::add_inplace(wx_->grad, dwx_);
  dwh_.reset({H, 4 * H});
  tensor::gemm_tn(cache.h_prev, dz, dwh_);
  tensor::add_inplace(wh_->grad, dwh_);
  tensor::accumulate_col_sums(dz, b_->grad);

  // Input grads.
  Tensor dx({batch, input_dim_});
  tensor::gemm_nt(dz, wx_->value, dx);
  grad_h_prev.reset({batch, H});
  tensor::gemm_nt(dz, wh_->value, grad_h_prev);
  return dx;
}

void LstmCell::clear_cache() { cache_.clear(); }

}  // namespace ncnas::nn
