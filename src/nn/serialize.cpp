#include "ncnas/nn/serialize.hpp"

#include <fstream>
#include <stdexcept>

namespace ncnas::nn {

namespace {
constexpr const char* kMagic = "ncnas-weights-v1";
}

void save_weights(const Graph& graph, const std::string& path) {
  const std::vector<ParamPtr> params = graph.parameters();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  out << kMagic << '\n' << params.size() << '\n';
  out.precision(9);
  for (const ParamPtr& p : params) {
    out << p->name << '\n' << p->value.rank();
    for (std::size_t d = 0; d < p->value.rank(); ++d) out << ' ' << p->value.dim(d);
    out << '\n';
    const auto flat = p->value.flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      out << flat[i] << (i + 1 == flat.size() ? '\n' : ' ');
    }
  }
  if (!out) throw std::runtime_error("save_weights: write failed for " + path);
}

void load_weights(Graph& graph, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) throw std::invalid_argument("load_weights: bad magic in " + path);
  std::size_t count = 0;
  in >> count;
  const std::vector<ParamPtr> params = graph.parameters();
  if (count != params.size()) {
    throw std::invalid_argument("load_weights: file has " + std::to_string(count) +
                                " parameters, graph has " + std::to_string(params.size()) +
                                " (did you materialize the lazy layers?)");
  }
  in >> std::ws;
  for (const ParamPtr& p : params) {
    std::string name;
    std::getline(in, name);
    std::size_t rank = 0;
    in >> rank;
    tensor::Shape shape(rank);
    for (std::size_t d = 0; d < rank; ++d) in >> shape[d];
    if (shape != p->value.shape()) {
      throw std::invalid_argument("load_weights: shape mismatch for '" + p->name +
                                  "': file " + tensor::to_string(shape) + " vs graph " +
                                  tensor::to_string(p->value.shape()));
    }
    for (float& v : p->value.flat()) in >> v;
    in >> std::ws;
  }
  if (!in) throw std::invalid_argument("load_weights: truncated file " + path);
}

}  // namespace ncnas::nn
