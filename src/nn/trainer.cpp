#include "ncnas/nn/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ncnas/obs/profiler.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {

using tensor::Tensor;

Tensor slice_rows(const Tensor& t, std::size_t begin, std::size_t end) {
  if (t.rank() != 2 || begin > end || end > t.dim(0)) {
    throw std::invalid_argument("slice_rows: bad range or rank");
  }
  const std::size_t cols = t.dim(1);
  Tensor out({end - begin, cols});
  std::copy(t.data() + begin * cols, t.data() + end * cols, out.data());
  return out;
}

Tensor gather_rows(const Tensor& t, std::span<const std::size_t> rows) {
  if (t.rank() != 2) throw std::invalid_argument("gather_rows: rank-2 tensor required");
  const std::size_t cols = t.dim(1);
  Tensor out({rows.size(), cols});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= t.dim(0)) throw std::invalid_argument("gather_rows: row out of range");
  }
  // Validated above; the copies are pure disjoint writes, safe to chunk.
  tensor::parallel_rows(rows.size(), cols, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      std::copy(t.data() + rows[i] * cols, t.data() + (rows[i] + 1) * cols,
                out.data() + i * cols);
    }
  });
  return out;
}

TrainResult fit(Graph& model, std::span<const Tensor> inputs, const Tensor& target,
                const TrainOptions& opts, tensor::Rng& rng) {
  if (inputs.empty()) throw std::invalid_argument("fit: no inputs");
  const std::size_t rows = target.dim(0);
  for (const Tensor& x : inputs) {
    if (x.rank() != 2 || x.dim(0) != rows) {
      throw std::invalid_argument("fit: every input must be rank-2 with " + std::to_string(rows) +
                                  " rows");
    }
  }
  if (opts.batch_size == 0) throw std::invalid_argument("fit: batch_size must be positive");

  // Subset selection (done once, as in the paper's fixed 10 % training split).
  std::vector<std::size_t> index(rows);
  std::iota(index.begin(), index.end(), 0);
  if (opts.subset_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(
        std::max<double>(1.0, opts.subset_fraction * static_cast<double>(rows)));
    // Partial Fisher–Yates: the first `keep` entries become a uniform sample.
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(rows - i));
      std::swap(index[i], index[j]);
    }
    index.resize(keep);
  }

  Adam optimizer(opts.learning_rate);
  TrainResult result;
  ForwardCtx ctx{.training = true, .rng = &rng};

  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    NCNAS_PROF_SCOPE("train/epoch");
    // Epoch shuffle (Fisher–Yates with our deterministic rng).
    for (std::size_t i = index.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
      std::swap(index[i - 1], index[j]);
    }
    double epoch_loss = 0.0;
    std::size_t epoch_batches = 0;
    for (std::size_t start = 0; start < index.size(); start += opts.batch_size) {
      if (opts.should_stop && opts.should_stop()) {
        result.stopped_early = true;
        if (epoch_batches > 0) {
          result.epoch_losses.push_back(static_cast<float>(epoch_loss / epoch_batches));
        }
        return result;
      }
      const std::size_t stop = std::min(start + opts.batch_size, index.size());
      const std::span<const std::size_t> batch_rows(index.data() + start, stop - start);
      std::vector<Tensor> bx;
      Tensor by;
      {
        NCNAS_PROF_SCOPE("train/gather");
        bx.reserve(inputs.size());
        for (const Tensor& x : inputs) bx.push_back(gather_rows(x, batch_rows));
        by = gather_rows(target, batch_rows);
      }

      model.zero_grad();
      Tensor pred;
      {
        NCNAS_PROF_SCOPE("train/forward");
        pred = model.forward(bx, ctx);
      }
      LossValue lv;
      {
        NCNAS_PROF_SCOPE("train/loss");
        lv = compute_loss(opts.loss, pred, by);
      }
      {
        NCNAS_PROF_SCOPE("train/backward");
        model.backward(lv.grad);
      }
      {
        NCNAS_PROF_SCOPE("train/optimizer");
        optimizer.step(model.parameters());
      }

      epoch_loss += lv.loss;
      ++epoch_batches;
      ++result.batches_run;
    }
    if (epoch_batches > 0) {
      result.epoch_losses.push_back(static_cast<float>(epoch_loss / epoch_batches));
    }
  }
  return result;
}

float evaluate(Graph& model, std::span<const Tensor> inputs, const Tensor& target,
               Metric metric, std::size_t batch_size) {
  const std::size_t rows = target.dim(0);
  Tensor all_pred;
  ForwardCtx ctx{.training = false, .rng = nullptr};
  for (std::size_t start = 0; start < rows; start += batch_size) {
    const std::size_t stop = std::min(start + batch_size, rows);
    std::vector<Tensor> bx;
    bx.reserve(inputs.size());
    for (const Tensor& x : inputs) bx.push_back(slice_rows(x, start, stop));
    const Tensor pred = model.forward(bx, ctx);
    if (all_pred.empty()) {
      all_pred = Tensor({rows, pred.dim(1)});
    }
    std::copy(pred.data(), pred.data() + pred.size(), all_pred.data() + start * pred.dim(1));
  }
  return compute_metric(metric, all_pred, target);
}

}  // namespace ncnas::nn
