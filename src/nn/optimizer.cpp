#include "ncnas/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {

void Sgd::step(const std::vector<ParamPtr>& params) {
  for (const ParamPtr& p : params) {
    float* v = p->value.data();
    const float* g = p->grad.data();
    tensor::parallel_elems(p->size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) v[i] -= lr_ * g[i];
    });
  }
}

const std::string& Adam::key_for(const Parameter* p) {
  const auto it = key_cache_.find(p);
  if (it != key_cache_.end()) return it->second;
  const std::size_t count = ++name_counts_[p->name];
  std::string key = count == 1 ? p->name : p->name + "#" + std::to_string(count);
  return key_cache_.emplace(p, std::move(key)).first->second;
}

void Adam::step(const std::vector<ParamPtr>& params) {
  ++step_count_;
  const float b1t = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float b2t = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (const ParamPtr& p : params) {
    Moments& mom = state_[key_for(p.get())];
    if (mom.m.empty()) {
      mom.m = tensor::Tensor(p->value.shape());
      mom.v = tensor::Tensor(p->value.shape());
    } else if (mom.m.size() != p->size()) {
      // Only reachable after import_state() with a foreign layout.
      throw std::invalid_argument("Adam::step: imported moments for " + p->name +
                                  " do not match the parameter shape");
    }
    float* val = p->value.data();
    const float* g = p->grad.data();
    float* m = mom.m.data();
    float* v = mom.v.data();
    // Per-element update with no cross-element dependency: deterministic to
    // chunk (parallel_elems boundaries are thread-count-independent).
    tensor::parallel_elems(p->size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
        v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
        const float mhat = m[i] / b1t;
        const float vhat = v[i] / b2t;
        val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    });
  }
}

Adam::State Adam::export_state() const {
  State out;
  out.step_count = step_count_;
  out.entries.reserve(state_.size());
  for (const auto& [key, mom] : state_) {
    MomentEntry e;
    e.key = key;
    e.shape = mom.m.shape();
    e.m.assign(mom.m.flat().begin(), mom.m.flat().end());
    e.v.assign(mom.v.flat().begin(), mom.v.flat().end());
    out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const MomentEntry& a, const MomentEntry& b) { return a.key < b.key; });
  return out;
}

void Adam::import_state(const State& state) {
  step_count_ = state.step_count;
  state_.clear();
  key_cache_.clear();
  name_counts_.clear();
  for (const MomentEntry& e : state.entries) {
    if (e.m.size() != tensor::numel(e.shape) || e.v.size() != e.m.size()) {
      throw std::invalid_argument("Adam::import_state: moment size mismatch for " + e.key);
    }
    Moments mom;
    mom.m = tensor::Tensor(e.shape, e.m);
    mom.v = tensor::Tensor(e.shape, e.v);
    state_.emplace(e.key, std::move(mom));
  }
}

}  // namespace ncnas::nn
