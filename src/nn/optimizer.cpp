#include "ncnas/nn/optimizer.hpp"

#include <cmath>

namespace ncnas::nn {

void Sgd::step(const std::vector<ParamPtr>& params) {
  for (const ParamPtr& p : params) {
    float* v = p->value.data();
    const float* g = p->grad.data();
    for (std::size_t i = 0; i < p->size(); ++i) v[i] -= lr_ * g[i];
  }
}

void Adam::step(const std::vector<ParamPtr>& params) {
  ++step_count_;
  const float b1t = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float b2t = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (const ParamPtr& p : params) {
    Moments& mom = state_[p.get()];
    if (mom.m.empty()) {
      mom.m = tensor::Tensor(p->value.shape());
      mom.v = tensor::Tensor(p->value.shape());
    }
    float* val = p->value.data();
    const float* g = p->grad.data();
    float* m = mom.m.data();
    float* v = mom.v.data();
    for (std::size_t i = 0; i < p->size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / b1t;
      const float vhat = v[i] / b2t;
      val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace ncnas::nn
