#include "ncnas/obs/journal.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "ncnas/obs/metrics.hpp"

namespace ncnas::obs {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Doubles are written with enough digits to round-trip exactly, so a replay
// applies the driver's deadline rule to bit-identical timestamps.
void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // JSON has no Inf/NaN; clamp rather than emit invalid output
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    std::ostringstream tmp;
    tmp << std::setprecision(17) << v;
    os << tmp.str();
  }
}

namespace {

struct NameEntry {
  JournalEventType type;
  const char* name;
};

constexpr NameEntry kNames[] = {
    {JournalEventType::kRunStarted, "run_started"},
    {JournalEventType::kRunFinished, "run_finished"},
    {JournalEventType::kEvalDispatched, "eval_dispatched"},
    {JournalEventType::kEvalFinished, "eval_finished"},
    {JournalEventType::kEvalCached, "eval_cached"},
    {JournalEventType::kEvalTimeout, "eval_timeout"},
    {JournalEventType::kPpoUpdate, "ppo_update"},
    {JournalEventType::kPsExchange, "ps_exchange"},
    {JournalEventType::kAgentConverged, "agent_converged"},
    {JournalEventType::kStragglerDetected, "straggler_detected"},
    {JournalEventType::kAgentStalled, "agent_stalled"},
    {JournalEventType::kEvalFailed, "eval_failed"},
    {JournalEventType::kEvalRetried, "eval_retried"},
    {JournalEventType::kEvalExhausted, "eval_exhausted"},
    {JournalEventType::kResultLost, "result_lost"},
    {JournalEventType::kWorkerCrashed, "worker_crashed"},
    {JournalEventType::kAgentDead, "agent_dead"},
    {JournalEventType::kPsDropped, "ps_dropped"},
    {JournalEventType::kPsDelayed, "ps_delayed"},
    {JournalEventType::kBarrierTimeout, "barrier_timeout"},
    {JournalEventType::kCheckpointWritten, "checkpoint_written"},
    {JournalEventType::kRunResumed, "run_resumed"},
    {JournalEventType::kLadderRung, "ladder_rung"},
};

void write_event(std::ostream& os, const JournalEvent& e) {
  os << "{\"v\":" << kJournalSchemaVersion << ",\"seq\":" << e.seq << ",\"type\":\""
     << journal_event_name(e.type) << "\",\"t\":";
  write_json_number(os, e.t);
  os << ",\"agent\":";
  if (e.agent == kNoAgent) {
    os << -1;
  } else {
    os << e.agent;
  }
  os << ",\"payload\":{";
  for (std::size_t i = 0; i < e.payload.size(); ++i) {
    if (i) os << ',';
    write_json_string(os, e.payload[i].key);
    os << ':';
    write_json_number(os, e.payload[i].value);
  }
  os << "}}";
}

// ---- minimal parser for the journal's own JSONL dialect --------------------
// Values are strings, numbers, or one level of nested object ("payload").

struct Parser {
  std::string_view s;
  std::size_t i = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("journal import: ") + what);
  }
  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  void expect(char c) {
    ws();
    if (i >= s.size() || s[i] != c) fail("malformed line");
    ++i;
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char esc = s[i++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (i + 4 > s.size()) fail("truncated escape");
            c = static_cast<char>(std::stoi(std::string(s.substr(i, 4)), nullptr, 16));
            i += 4;
            break;
          }
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    if (i >= s.size()) fail("unterminated string");
    ++i;
    return out;
  }
  double number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    if (i == start) fail("expected number");
    return std::stod(std::string(s.substr(start, i - start)));
  }
};

struct ParsedLine {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
  std::vector<JournalField> payload;
};

ParsedLine parse_line(std::string_view line) {
  Parser p{line};
  ParsedLine out;
  p.expect('{');
  if (!p.peek('}')) {
    do {
      const std::string key = p.string();
      p.expect(':');
      if (p.peek('"')) {
        out.strings[key] = p.string();
      } else if (p.peek('{')) {
        p.expect('{');
        if (!p.peek('}')) {
          do {
            std::string fkey = p.string();
            p.expect(':');
            out.payload.push_back({std::move(fkey), p.number()});
          } while (p.peek(',') && (p.expect(','), true));
        }
        p.expect('}');
      } else {
        out.numbers[key] = p.number();
      }
    } while (p.peek(',') && (p.expect(','), true));
  }
  p.expect('}');
  return out;
}

}  // namespace

const char* journal_event_name(JournalEventType type) {
  for (const NameEntry& e : kNames) {
    if (e.type == type) return e.name;
  }
  return "?";
}

std::optional<JournalEventType> journal_event_from_name(std::string_view name) {
  for (const NameEntry& e : kNames) {
    if (e.name == name) return e.type;
  }
  return std::nullopt;
}

double JournalEvent::field(std::string_view key, double fallback) const {
  for (const JournalField& f : payload) {
    if (f.key == key) return f.value;
  }
  return fallback;
}

bool JournalEvent::has_field(std::string_view key) const {
  return std::any_of(payload.begin(), payload.end(),
                     [&](const JournalField& f) { return f.key == key; });
}

Journal::Journal(std::size_t reserve) { events_.reserve(reserve); }

void Journal::subscribe(Subscriber fn) {
  const std::scoped_lock lock(notify_mu_);
  subscribers_.push_back(std::move(fn));
}

void Journal::append(JournalEventType type, double t, std::uint32_t agent,
                     std::vector<JournalField> payload) {
  JournalEvent e{type, t, agent, 0, std::move(payload)};
  {
    const std::scoped_lock lock(mu_);
    e.seq = next_seq_++;
    events_.push_back(e);
    if (live_.is_open()) live_write_locked(e);
  }
  // Dispatch outside the buffer lock; the recursive mutex lets a subscriber
  // append follow-up events (watchdog verdicts) from inside its callback.
  const std::scoped_lock lock(notify_mu_);
  for (const Subscriber& s : subscribers_) s(e);
}

std::size_t Journal::size() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

std::vector<JournalEvent> Journal::snapshot() const {
  const std::scoped_lock lock(mu_);
  return events_;
}

std::vector<JournalEvent> Journal::snapshot_since(std::size_t start) const {
  const std::scoped_lock lock(mu_);
  if (start >= events_.size()) return {};
  return {events_.begin() + static_cast<std::ptrdiff_t>(start), events_.end()};
}

void Journal::clear() {
  const std::scoped_lock lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

// ---- live streaming ---------------------------------------------------------

bool Journal::open_live_export(const std::string& path, bool append, Counter* error_counter) {
  const std::scoped_lock lock(mu_);
  if (live_.is_open()) live_.close();
  live_errors_sink_ = error_counter;
  live_.clear();
  live_.open(path, append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!live_.is_open()) {
    ++live_errors_;
    if (live_errors_sink_ != nullptr) live_errors_sink_->inc();
    return false;
  }
  // Header plus catch-up: everything already buffered goes out first so the
  // file is a complete journal, not a mid-run fragment.
  std::ostringstream head;
  head << "{\"schema\":\"ncnas.journal\",\"v\":" << kJournalSchemaVersion
       << ",\"events\":" << events_.size() << "}\n";
  for (const JournalEvent& e : events_) {
    write_event(head, e);
    head << '\n';
  }
  live_ << head.str() << std::flush;
  if (live_.fail()) {
    ++live_errors_;
    if (live_errors_sink_ != nullptr) live_errors_sink_->inc();
    live_.close();
    return false;
  }
  return true;
}

void Journal::close_live_export() {
  const std::scoped_lock lock(mu_);
  if (live_.is_open()) {
    live_.flush();
    live_.close();
  }
}

bool Journal::live_export_open() const {
  const std::scoped_lock lock(mu_);
  return live_.is_open();
}

std::uint64_t Journal::live_export_errors() const {
  const std::scoped_lock lock(mu_);
  return live_errors_;
}

void Journal::live_write_locked(const JournalEvent& e) {
  // Build the full line first, then write it in one shot and flush, so a
  // concurrent `tail -f` never observes a torn line.
  std::ostringstream line;
  write_event(line, e);
  line << '\n';
  live_ << line.str() << std::flush;
  if (live_.fail()) {
    ++live_errors_;
    if (live_errors_sink_ != nullptr) live_errors_sink_->inc();
    live_.close();  // first failure disables the sink; the search carries on
  }
}

void Journal::export_jsonl(std::ostream& os) const { export_jsonl(snapshot(), os); }

void Journal::export_jsonl(const std::vector<JournalEvent>& events, std::ostream& os) {
  os << "{\"schema\":\"ncnas.journal\",\"v\":" << kJournalSchemaVersion
     << ",\"events\":" << events.size() << "}\n";
  for (const JournalEvent& e : events) {
    write_event(os, e);
    os << '\n';
  }
}

std::vector<JournalEvent> Journal::import_jsonl(std::istream& is) {
  std::vector<JournalEvent> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const ParsedLine parsed = parse_line(line);
    const auto v = parsed.numbers.find("v");
    if (v == parsed.numbers.end()) {
      throw std::runtime_error("journal import: line without schema version");
    }
    if (static_cast<int>(v->second) > kJournalSchemaVersion) {
      throw std::runtime_error("journal import: schema version " +
                               std::to_string(static_cast<int>(v->second)) +
                               " is newer than supported version " +
                               std::to_string(kJournalSchemaVersion));
    }
    if (parsed.strings.count("schema") != 0) continue;  // header line
    const auto type_it = parsed.strings.find("type");
    if (type_it == parsed.strings.end()) {
      throw std::runtime_error("journal import: event line without type");
    }
    const auto type = journal_event_from_name(type_it->second);
    if (!type) continue;  // event from a newer minor writer: skip, don't fail
    JournalEvent e;
    e.type = *type;
    if (const auto it = parsed.numbers.find("t"); it != parsed.numbers.end()) e.t = it->second;
    if (const auto it = parsed.numbers.find("seq"); it != parsed.numbers.end()) {
      e.seq = static_cast<std::uint64_t>(it->second);
    }
    if (const auto it = parsed.numbers.find("agent"); it != parsed.numbers.end()) {
      e.agent = it->second < 0 ? kNoAgent : static_cast<std::uint32_t>(it->second);
    }
    e.payload = parsed.payload;
    out.push_back(std::move(e));
  }
  return out;
}

// ---- replay -----------------------------------------------------------------

double RunSummary::agent_rate_per_min(std::uint32_t agent) const {
  const auto it = per_agent.find(agent);
  if (it == per_agent.end()) return 0.0;
  const double span = end_time_s > 0.0 ? end_time_s : it->second.last_event_t;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(it->second.evals) / (span / 60.0);
}

RunSummary summarize_journal(const std::vector<JournalEvent>& events) {
  RunSummary sum;
  // First pass for the deadline: eval events past the configured wall time
  // are dropped from SearchResult.evals, and the replay must match.
  for (const JournalEvent& e : events) {
    if (e.type == JournalEventType::kRunStarted) {
      sum.has_run_started = true;
      sum.strategy = static_cast<int>(e.field("strategy", -1.0));
      sum.agents_declared = static_cast<std::size_t>(e.field("agents"));
      sum.workers_per_agent = static_cast<std::size_t>(e.field("workers"));
      if (e.has_field("wall_time_s")) sum.wall_time_s = e.field("wall_time_s");
    } else if (e.type == JournalEventType::kRunResumed) {
      // A resumed process's journal opens with run_resumed instead of
      // run_started; it repeats the deadline (and strategy) so the deadline
      // rule still applies when the prior journal is unavailable.
      if (!sum.has_run_started) {
        if (e.has_field("wall_time_s")) sum.wall_time_s = e.field("wall_time_s");
        if (sum.strategy < 0) sum.strategy = static_cast<int>(e.field("strategy", -1.0));
      }
    }
  }

  for (const JournalEvent& e : events) {
    if (e.agent != kNoAgent) {
      AgentActivity& a = sum.per_agent[e.agent];
      a.last_event_t = std::max(a.last_event_t, e.t);
    }
    switch (e.type) {
      case JournalEventType::kRunStarted:
        break;  // handled above
      case JournalEventType::kRunFinished:
        sum.has_run_finished = true;
        sum.end_time_s = e.field("end_time_s", e.t);
        sum.converged = e.field("converged") != 0.0;
        break;
      case JournalEventType::kEvalFinished:
      case JournalEventType::kEvalCached: {
        if (e.t > sum.wall_time_s) break;  // the driver's deadline filter
        const bool cached = e.type == JournalEventType::kEvalCached;
        const auto reward = static_cast<float>(e.field("reward"));
        ++sum.evals;
        if (cached) {
          ++sum.cache_hits;
          if (e.field("shared") != 0.0) ++sum.shared_cache_hits;
        } else {
          ++sum.real_evals;
        }
        AgentActivity& a = sum.per_agent[e.agent];
        ++a.evals;
        if (cached) ++a.cached;
        if (e.field("timed_out") != 0.0) ++a.timeouts;
        a.best_reward = std::max(a.best_reward, reward);
        sum.rewards.emplace_back(e.t, reward);
        if (reward > sum.best_reward) {
          sum.best_reward = reward;
          sum.best_reward_t = e.t;
        }
        break;
      }
      case JournalEventType::kEvalTimeout:
        if (e.t <= sum.wall_time_s) ++sum.timeouts;
        break;
      case JournalEventType::kEvalDispatched:
        break;
      case JournalEventType::kPpoUpdate:
        ++sum.ppo_updates;
        ++sum.per_agent[e.agent].ppo_updates;
        break;
      case JournalEventType::kPsExchange:
        ++sum.ps_exchanges;
        if (e.field("mode") == 0.0) {
          sum.ps_wait_seconds.push_back(e.field("wait_s"));
        } else {
          sum.ps_staleness.push_back(e.field("staleness"));
        }
        break;
      case JournalEventType::kAgentConverged:
        if (std::find(sum.converged_agents.begin(), sum.converged_agents.end(), e.agent) ==
            sum.converged_agents.end()) {
          sum.converged_agents.push_back(e.agent);
        }
        break;
      case JournalEventType::kStragglerDetected:
        ++sum.stragglers;
        break;
      case JournalEventType::kAgentStalled:
        ++sum.stalls;
        break;
      // Fault and recovery events count unconditionally (no deadline
      // filter), matching the SearchResult fault counters which increment at
      // the moment the fault is handled.
      case JournalEventType::kEvalFailed:
        ++sum.eval_failures;
        break;
      case JournalEventType::kEvalRetried:
        ++sum.retries;
        break;
      case JournalEventType::kEvalExhausted:
        ++sum.exhausted;
        break;
      case JournalEventType::kResultLost:
        ++sum.lost_results;
        break;
      case JournalEventType::kWorkerCrashed:
        ++sum.crashed_workers;
        break;
      case JournalEventType::kAgentDead:
        ++sum.dead_agents;
        break;
      case JournalEventType::kPsDropped:
        ++sum.ps_dropped;
        break;
      case JournalEventType::kPsDelayed:
        ++sum.ps_delayed;
        break;
      case JournalEventType::kBarrierTimeout:
        ++sum.barrier_timeouts;
        break;
      case JournalEventType::kCheckpointWritten:
        ++sum.checkpoints;
        break;
      case JournalEventType::kRunResumed:
        ++sum.resumes;
        sum.resume_times.push_back(e.field("from_t", e.t));
        break;
      // Ladder events mirror the SearchResult ladder counters (no deadline
      // filter: rung trainings are real worker time whenever they ran).
      case JournalEventType::kLadderRung: {
        ++sum.ladder_rung_events;
        const auto candidates = static_cast<std::size_t>(e.field("candidates"));
        const auto survivors = static_cast<std::size_t>(e.field("survivors"));
        const auto trainings = static_cast<std::size_t>(e.field("trainings"));
        const auto warm_starts = static_cast<std::size_t>(e.field("warm_starts"));
        const auto rung_hits = static_cast<std::size_t>(e.field("rung_hits"));
        const auto timeouts = static_cast<std::size_t>(e.field("timeouts"));
        sum.ladder_trainings += trainings;
        sum.ladder_promotions += survivors;
        sum.ladder_warm_starts += warm_starts;
        sum.ladder_rung_hits += rung_hits;
        sum.ladder_timeouts += timeouts;
        RunSummary::LadderRungTotals& rt =
            sum.ladder_rungs[static_cast<std::uint32_t>(e.field("rung"))];
        rt.candidates += candidates;
        rt.survivors += survivors;
        rt.trainings += trainings;
        rt.warm_starts += warm_starts;
        rt.rung_hits += rung_hits;
        rt.timeouts += timeouts;
        break;
      }
    }
  }
  std::stable_sort(sum.rewards.begin(), sum.rewards.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  if (sum.end_time_s == 0.0 && !sum.rewards.empty()) {
    sum.end_time_s = sum.rewards.back().first;
  }
  return sum;
}

std::vector<JournalEvent> merge_resumed_journal(std::vector<JournalEvent> prior,
                                                const std::vector<JournalEvent>& resumed) {
  const auto it = std::find_if(resumed.begin(), resumed.end(), [](const JournalEvent& e) {
    return e.type == JournalEventType::kRunResumed;
  });
  if (it == resumed.end()) {
    throw std::runtime_error("merge_resumed_journal: resumed journal has no run_resumed event");
  }
  const auto watermark = static_cast<std::size_t>(it->field("prior_events", -1.0));
  if (it->field("prior_events", -1.0) < 0.0) {
    throw std::runtime_error("merge_resumed_journal: run_resumed carries no prior_events");
  }
  if (prior.size() < watermark) {
    throw std::runtime_error(
        "merge_resumed_journal: prior journal has " + std::to_string(prior.size()) +
        " events but the snapshot expected at least " + std::to_string(watermark) +
        " — these journals are not from the same run");
  }
  // Events past the watermark were emitted after the snapshot the resume
  // restarted from: that work was re-done (and re-logged) by the resumed
  // process, so keeping them would double-count it.
  prior.resize(watermark);
  prior.insert(prior.end(), resumed.begin(), resumed.end());
  for (std::size_t i = 0; i < prior.size(); ++i) prior[i].seq = i;
  return prior;
}

void export_run_summary_json(const RunSummary& sum, std::ostream& os) {
  const auto key = [&os](const char* k) {
    write_json_string(os, k);
    os << ':';
  };
  const auto num = [&](const char* k, double v) {
    key(k);
    write_json_number(os, v);
    os << ',';
  };
  const auto boolean = [&](const char* k, bool v) {
    key(k);
    os << (v ? "true" : "false") << ',';
  };
  const auto number_array = [&](const char* k, const std::vector<double>& vs) {
    key(k);
    os << '[';
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (i) os << ',';
      write_json_number(os, vs[i]);
    }
    os << "],";
  };

  os << '{';
  num("schema_version", kJournalSchemaVersion);
  boolean("has_run_started", sum.has_run_started);
  boolean("has_run_finished", sum.has_run_finished);
  num("strategy", sum.strategy);
  num("agents_declared", static_cast<double>(sum.agents_declared));
  num("workers_per_agent", static_cast<double>(sum.workers_per_agent));
  num("wall_time_s", sum.wall_time_s);
  num("end_time_s", sum.end_time_s);
  boolean("converged", sum.converged);
  num("evals", static_cast<double>(sum.evals));
  num("real_evals", static_cast<double>(sum.real_evals));
  num("cache_hits", static_cast<double>(sum.cache_hits));
  num("shared_cache_hits", static_cast<double>(sum.shared_cache_hits));
  num("timeouts", static_cast<double>(sum.timeouts));
  num("ppo_updates", static_cast<double>(sum.ppo_updates));
  num("ps_exchanges", static_cast<double>(sum.ps_exchanges));
  num("stragglers", static_cast<double>(sum.stragglers));
  num("stalls", static_cast<double>(sum.stalls));
  key("converged_agents");
  os << '[';
  for (std::size_t i = 0; i < sum.converged_agents.size(); ++i) {
    if (i) os << ',';
    os << sum.converged_agents[i];
  }
  os << "],";
  num("eval_failures", static_cast<double>(sum.eval_failures));
  num("retries", static_cast<double>(sum.retries));
  num("exhausted", static_cast<double>(sum.exhausted));
  num("lost_results", static_cast<double>(sum.lost_results));
  num("crashed_workers", static_cast<double>(sum.crashed_workers));
  num("dead_agents", static_cast<double>(sum.dead_agents));
  num("ps_dropped", static_cast<double>(sum.ps_dropped));
  num("ps_delayed", static_cast<double>(sum.ps_delayed));
  num("barrier_timeouts", static_cast<double>(sum.barrier_timeouts));
  num("checkpoints", static_cast<double>(sum.checkpoints));
  num("resumes", static_cast<double>(sum.resumes));
  number_array("resume_times", sum.resume_times);
  boolean("faulty", sum.faulty());
  num("ladder_rung_events", static_cast<double>(sum.ladder_rung_events));
  num("ladder_trainings", static_cast<double>(sum.ladder_trainings));
  num("ladder_promotions", static_cast<double>(sum.ladder_promotions));
  num("ladder_warm_starts", static_cast<double>(sum.ladder_warm_starts));
  num("ladder_rung_hits", static_cast<double>(sum.ladder_rung_hits));
  num("ladder_timeouts", static_cast<double>(sum.ladder_timeouts));
  key("ladder_rungs");
  os << '{';
  bool first_rung = true;
  for (const auto& [rung, rt] : sum.ladder_rungs) {
    if (!first_rung) os << ',';
    first_rung = false;
    write_json_string(os, std::to_string(rung));
    os << ":{\"candidates\":" << rt.candidates << ",\"survivors\":" << rt.survivors
       << ",\"trainings\":" << rt.trainings << ",\"warm_starts\":" << rt.warm_starts
       << ",\"rung_hits\":" << rt.rung_hits << ",\"timeouts\":" << rt.timeouts << '}';
  }
  os << "},";
  num("best_reward", sum.best_reward);
  num("best_reward_t", sum.best_reward_t);
  key("rewards");
  os << '[';
  for (std::size_t i = 0; i < sum.rewards.size(); ++i) {
    if (i) os << ',';
    os << "[";
    write_json_number(os, sum.rewards[i].first);
    os << ',';
    write_json_number(os, sum.rewards[i].second);
    os << ']';
  }
  os << "],";
  key("per_agent");
  os << '{';
  bool first_agent = true;
  for (const auto& [id, a] : sum.per_agent) {
    if (!first_agent) os << ',';
    first_agent = false;
    write_json_string(os, std::to_string(id));
    os << ":{";
    os << "\"evals\":" << a.evals << ",\"cached\":" << a.cached
       << ",\"timeouts\":" << a.timeouts << ",\"ppo_updates\":" << a.ppo_updates
       << ",\"last_event_t\":";
    write_json_number(os, a.last_event_t);
    os << ",\"best_reward\":";
    write_json_number(os, a.best_reward);
    os << ",\"rate_per_min\":";
    write_json_number(os, sum.agent_rate_per_min(id));
    os << '}';
  }
  os << "},";
  number_array("ps_wait_seconds", sum.ps_wait_seconds);
  key("ps_staleness");
  os << '[';
  for (std::size_t i = 0; i < sum.ps_staleness.size(); ++i) {
    if (i) os << ',';
    write_json_number(os, sum.ps_staleness[i]);
  }
  os << ']';
  os << "}\n";
}

}  // namespace ncnas::obs
