#include "ncnas/obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace ncnas::obs {

namespace detail {
std::atomic<Profiler*> g_profiler{nullptr};
}  // namespace detail

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::atomic<std::uint64_t> g_epoch_source{1};

}  // namespace

// One call tree per thread. Node 0 is a synthetic root: its children are the
// thread's top-level scopes, and work/allocs recorded outside any scope land
// on it (surfaced as "(unscoped)" in snapshots).
struct Profiler::ThreadTree {
  struct Node {
    std::string name;
    std::uint32_t parent = 0;
    std::vector<std::uint32_t> children;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    double flops = 0.0;
    double bytes = 0.0;
    std::uint64_t alloc_count = 0;
    std::uint64_t alloc_bytes = 0;
  };
  mutable std::mutex mu;
  std::vector<Node> nodes{1};
  std::uint32_t current = 0;

  // Caller holds mu.
  [[nodiscard]] ProfileNode to_profile_node(std::uint32_t idx) const {
    const Node& n = nodes[idx];
    ProfileNode out;
    out.name = n.name;
    out.calls = n.calls;
    out.total_ms = static_cast<double>(n.total_ns) * 1e-6;
    out.flops = n.flops;
    out.bytes_moved = n.bytes;
    out.alloc_count = n.alloc_count;
    out.alloc_bytes = n.alloc_bytes;
    out.children.reserve(n.children.size());
    for (std::uint32_t c : n.children) out.children.push_back(to_profile_node(c));
    return out;
  }
};

struct Profiler::Registry {
  mutable std::mutex mu;
  // Keyed by thread id so a pool thread re-entering the same profiler after
  // a cache miss (e.g. it visited another profiler in between) does not get
  // counted as a second thread.
  std::unordered_map<std::thread::id, std::unique_ptr<ThreadTree>> trees;
};

namespace {
struct TlsCache {
  std::uint64_t epoch = 0;
  void* tree = nullptr;  // Profiler::ThreadTree* (private type; opaque here)
};
thread_local TlsCache t_cache;
}  // namespace

Profiler::Profiler()
    : epoch_(g_epoch_source.fetch_add(1, std::memory_order_relaxed)),
      reg_(std::make_unique<Registry>()) {}

Profiler::~Profiler() = default;

Profiler::ThreadTree* Profiler::tree_for_current_thread() {
  if (t_cache.epoch == epoch_ && t_cache.tree != nullptr) {
    return static_cast<ThreadTree*>(t_cache.tree);
  }
  std::lock_guard<std::mutex> lock(reg_->mu);
  std::unique_ptr<ThreadTree>& slot = reg_->trees[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<ThreadTree>();
  t_cache = {epoch_, slot.get()};
  return slot.get();
}

Profiler::ThreadTree* Profiler::begin_scope(std::string_view name) {
  ThreadTree* tree = tree_for_current_thread();
  std::lock_guard<std::mutex> lock(tree->mu);
  const std::uint32_t parent = tree->current;
  std::uint32_t child = 0;
  for (std::uint32_t c : tree->nodes[parent].children) {
    if (tree->nodes[c].name == name) {
      child = c;
      break;
    }
  }
  if (child == 0) {
    child = static_cast<std::uint32_t>(tree->nodes.size());
    ThreadTree::Node node;
    node.name.assign(name);
    node.parent = parent;
    tree->nodes.push_back(std::move(node));
    tree->nodes[parent].children.push_back(child);
  }
  tree->current = child;
  return tree;
}

void Profiler::end_scope(ThreadTree* tree, std::uint64_t elapsed_ns, double flops, double bytes) {
  std::lock_guard<std::mutex> lock(tree->mu);
  ThreadTree::Node& node = tree->nodes[tree->current];
  node.calls += 1;
  node.total_ns += elapsed_ns;
  node.flops += flops;
  node.bytes += bytes;
  tree->current = node.parent;
}

void Profiler::add_work(ThreadTree* tree, double flops, double bytes) {
  std::lock_guard<std::mutex> lock(tree->mu);
  ThreadTree::Node& node = tree->nodes[tree->current];
  node.flops += flops;
  node.bytes += bytes;
}

void Profiler::add_alloc(ThreadTree* tree, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(tree->mu);
  ThreadTree::Node& node = tree->nodes[tree->current];
  node.alloc_count += 1;
  node.alloc_bytes += bytes;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(reg_->mu);
  // Trees stay allocated (TLS caches keep raw pointers into them); only the
  // recorded contents are dropped.
  for (auto& [tid, tree] : reg_->trees) {
    std::lock_guard<std::mutex> tree_lock(tree->mu);
    tree->nodes.assign(1, ThreadTree::Node{});
    tree->current = 0;
  }
}

namespace {

void merge_into(std::vector<ProfileNode>& dst, ProfileNode src) {
  for (ProfileNode& d : dst) {
    if (d.name == src.name) {
      d.calls += src.calls;
      d.total_ms += src.total_ms;
      d.flops += src.flops;
      d.bytes_moved += src.bytes_moved;
      d.alloc_count += src.alloc_count;
      d.alloc_bytes += src.alloc_bytes;
      for (ProfileNode& c : src.children) merge_into(d.children, std::move(c));
      return;
    }
  }
  dst.push_back(std::move(src));
}

void fill_self(ProfileNode& node) {
  double child_total = 0.0;
  for (ProfileNode& c : node.children) {
    fill_self(c);
    child_total += c.total_ms;
  }
  node.self_ms = std::max(0.0, node.total_ms - child_total);
}

void accumulate_flat(const ProfileNode& node, std::map<std::string, FlatProfileEntry>& by_name) {
  FlatProfileEntry& e = by_name[node.name];
  e.name = node.name;
  e.calls += node.calls;
  e.total_ms += node.total_ms;
  e.self_ms += node.self_ms;
  e.flops += node.flops;
  e.bytes_moved += node.bytes_moved;
  e.alloc_count += node.alloc_count;
  e.alloc_bytes += node.alloc_bytes;
  for (const ProfileNode& c : node.children) accumulate_flat(c, by_name);
}

}  // namespace

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  std::lock_guard<std::mutex> lock(reg_->mu);
  snap.threads_merged = reg_->trees.size();
  for (const auto& [tid, tree] : reg_->trees) {
    std::lock_guard<std::mutex> tree_lock(tree->mu);
    const ThreadTree::Node& root = tree->nodes[0];
    for (std::uint32_t c : root.children) merge_into(snap.roots, tree->to_profile_node(c));
    if (root.flops > 0.0 || root.bytes > 0.0 || root.alloc_count > 0) {
      ProfileNode unscoped;
      unscoped.name = "(unscoped)";
      unscoped.flops = root.flops;
      unscoped.bytes_moved = root.bytes;
      unscoped.alloc_count = root.alloc_count;
      unscoped.alloc_bytes = root.alloc_bytes;
      merge_into(snap.roots, std::move(unscoped));
    }
  }
  for (ProfileNode& r : snap.roots) fill_self(r);
  return snap;
}

std::vector<FlatProfileEntry> ProfileSnapshot::flat() const {
  std::map<std::string, FlatProfileEntry> by_name;
  for (const ProfileNode& r : roots) accumulate_flat(r, by_name);
  std::vector<FlatProfileEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, e] : by_name) out.push_back(std::move(e));
  std::sort(out.begin(), out.end(), [](const FlatProfileEntry& a, const FlatProfileEntry& b) {
    if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
    return a.name < b.name;
  });
  return out;
}

namespace {

// Local copies of the JSON helpers (trace.cpp keeps its own in an anonymous
// namespace; these stay file-local for the same reason).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    std::ostringstream tmp;
    tmp << std::setprecision(12) << v;
    os << tmp.str();
  }
}

void write_tree_text(std::ostream& os, const ProfileNode& node, int depth) {
  std::ostringstream label;
  for (int i = 0; i < depth; ++i) label << "  ";
  label << node.name;
  os << std::left << std::setw(40) << label.str() << std::right << std::fixed
     << std::setprecision(3) << std::setw(12) << node.total_ms << std::setw(12) << node.self_ms
     << std::setw(10) << node.calls << '\n';
  for (const ProfileNode& c : node.children) write_tree_text(os, c, depth + 1);
}

}  // namespace

void ProfileSnapshot::export_text(std::ostream& os) const {
  os << "profile: " << threads_merged << " thread(s) merged\n";
  if (roots.empty()) {
    os << "(no scopes recorded)\n";
    return;
  }
  os << "-- call tree --\n";
  os << std::left << std::setw(40) << "scope" << std::right << std::setw(12) << "total_ms"
     << std::setw(12) << "self_ms" << std::setw(10) << "calls" << '\n';
  for (const ProfileNode& r : roots) write_tree_text(os, r, 0);
  os << "-- flat (by self time) --\n";
  os << std::left << std::setw(28) << "name" << std::right << std::setw(10) << "calls"
     << std::setw(12) << "total_ms" << std::setw(12) << "self_ms" << std::setw(10) << "GFLOP/s"
     << std::setw(10) << "flop/B" << std::setw(10) << "allocs" << std::setw(12) << "alloc_KB"
     << '\n';
  for (const FlatProfileEntry& e : flat()) {
    os << std::left << std::setw(28) << e.name << std::right << std::fixed << std::setprecision(3)
       << std::setw(10) << e.calls << std::setw(12) << e.total_ms << std::setw(12) << e.self_ms
       << std::setw(10) << std::setprecision(2) << e.gflops() << std::setw(10)
       << e.arithmetic_intensity() << std::setw(10) << e.alloc_count << std::setw(12)
       << std::setprecision(1) << static_cast<double>(e.alloc_bytes) / 1024.0 << '\n';
  }
}

void ProfileSnapshot::export_json(std::ostream& os) const {
  os << "{\n\"schema_version\": " << kProfileSchemaVersion
     << ",\n\"threads_merged\": " << threads_merged << ",\n\"flat\": [";
  const std::vector<FlatProfileEntry> entries = flat();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const FlatProfileEntry& e = entries[i];
    if (i) os << ',';
    os << "\n{\"name\": ";
    write_escaped(os, e.name);
    os << ", \"calls\": " << e.calls << ", \"total_ms\": ";
    write_json_number(os, e.total_ms);
    os << ", \"self_ms\": ";
    write_json_number(os, e.self_ms);
    os << ", \"flops\": ";
    write_json_number(os, e.flops);
    os << ", \"bytes_moved\": ";
    write_json_number(os, e.bytes_moved);
    os << ", \"alloc_count\": " << e.alloc_count << ", \"alloc_bytes\": " << e.alloc_bytes << "}";
  }
  os << "\n]\n}\n";
}

namespace {

// Minimal line-oriented extraction, matched to our own one-record-per-line
// writers (export_json, bench_kernels). Not a general JSON parser.
bool find_number(const std::string& line, const std::string& key, double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  try {
    out = std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool find_string(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
    out.push_back(line[pos]);
    ++pos;
  }
  return pos < line.size();
}

}  // namespace

ImportedProfile import_profile_json(std::istream& is) {
  ImportedProfile out;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    double num = 0.0;
    if (!saw_header && find_number(line, "schema_version", num)) {
      out.schema_version = static_cast<int>(num);
      saw_header = true;
      continue;
    }
    if (find_number(line, "threads_merged", num)) {
      out.threads_merged = static_cast<std::uint64_t>(num);
      continue;
    }
    FlatProfileEntry e;
    if (!find_string(line, "name", e.name)) continue;
    if (find_number(line, "calls", num)) e.calls = static_cast<std::uint64_t>(num);
    find_number(line, "total_ms", e.total_ms);
    find_number(line, "self_ms", e.self_ms);
    find_number(line, "flops", e.flops);
    find_number(line, "bytes_moved", e.bytes_moved);
    if (find_number(line, "alloc_count", num)) e.alloc_count = static_cast<std::uint64_t>(num);
    if (find_number(line, "alloc_bytes", num)) e.alloc_bytes = static_cast<std::uint64_t>(num);
    out.flat.push_back(std::move(e));
  }
  if (!saw_header) throw std::runtime_error("import_profile_json: missing schema_version");
  if (out.schema_version != kProfileSchemaVersion) {
    throw std::runtime_error("import_profile_json: unsupported schema_version " +
                             std::to_string(out.schema_version));
  }
  return out;
}

ProfileScope::ProfileScope(std::string_view name) noexcept {
  Profiler* p = current_profiler();
  if (p == nullptr || name.empty()) return;
  tree_ = p->begin_scope(name);
  // Timed from after the child lookup so bookkeeping is not billed to the
  // scope itself.
  start_ns_ = now_ns();
}

ProfileScope::~ProfileScope() {
  if (tree_ == nullptr) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  Profiler::end_scope(static_cast<Profiler::ThreadTree*>(tree_), elapsed, flops_, bytes_);
}

void profile_work(double flops, double bytes) noexcept {
  Profiler* p = current_profiler();
  if (p == nullptr) return;
  Profiler::add_work(p->tree_for_current_thread(), flops, bytes);
}

void profile_alloc(std::uint64_t bytes) noexcept {
  Profiler* p = current_profiler();
  if (p == nullptr) return;
  Profiler::add_alloc(p->tree_for_current_thread(), bytes);
}

}  // namespace ncnas::obs
