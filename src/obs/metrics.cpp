#include "ncnas/obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ncnas::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<double> exp_buckets(double start, double factor, std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exp_buckets: need start > 0 and factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

double HistogramSample::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum > target || (q >= 1.0 && cum >= target)) {
      return i < bounds.size() ? bounds[i] : (bounds.empty() ? 0.0 : bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramSample make_histogram_sample(std::string name, std::vector<double> bounds,
                                      std::span<const double> values) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("make_histogram_sample: bucket bounds must be ascending");
  }
  HistogramSample s;
  s.name = std::move(name);
  s.bounds = std::move(bounds);
  s.buckets.assign(s.bounds.size() + 1, 0);
  for (double v : values) {
    const auto it = std::lower_bound(s.bounds.begin(), s.bounds.end(), v);
    ++s.buckets[static_cast<std::size_t>(it - s.bounds.begin())];
    ++s.count;
    s.sum += v;
  }
  return s;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const HistogramSample* MetricsSnapshot::histogram(const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void write_number(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << std::setprecision(9) << v;
  }
}

}  // namespace

void MetricsSnapshot::to_prometheus(std::ostream& os) const {
  // Registered names may carry an inline `{label="..."}` suffix (the
  // multi-tenant convention); the TYPE line only ever shows the bare name,
  // deduplicated across the label variants of a family.
  const auto bare_name = [](const std::string& name) {
    const std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
  };
  std::string last_type;
  for (const CounterSample& c : counters) {
    const std::string bare = bare_name(c.name);
    if (bare != last_type) {
      os << "# TYPE " << bare << " counter\n";
      last_type = bare;
    }
    os << c.name << ' ' << c.value << '\n';
  }
  last_type.clear();
  for (const GaugeSample& g : gauges) {
    const std::string bare = bare_name(g.name);
    if (bare != last_type) {
      os << "# TYPE " << bare << " gauge\n";
      last_type = bare;
    }
    os << g.name << ' ';
    write_number(os, g.value);
    os << '\n';
  }
  for (const HistogramSample& h : histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.buckets[i];
      os << h.name << "_bucket{le=\"";
      write_number(os, h.bounds[i]);
      os << "\"} " << cum << '\n';
    }
    cum += h.buckets.empty() ? 0 : h.buckets.back();
    os << h.name << "_bucket{le=\"+Inf\"} " << cum << '\n';
    os << h.name << "_sum ";
    write_number(os, h.sum);
    os << '\n' << h.name << "_count " << h.count << '\n';
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = exp_buckets(0.001, 4.0, 16);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::dump_prometheus(std::ostream& os) const { snapshot().to_prometheus(os); }

}  // namespace ncnas::obs
