#include "ncnas/obs/watchdog.hpp"

#include <algorithm>

namespace ncnas::obs {

HealthWatchdog::HealthWatchdog(WatchdogConfig cfg, Journal* journal, MetricsRegistry* metrics)
    : cfg_(cfg), journal_(journal) {
  if (metrics != nullptr) {
    straggler_counter_ = &metrics->counter("ncnas_watchdog_stragglers_total");
    stall_counter_ = &metrics->counter("ncnas_watchdog_stalls_total");
    expected_gauge_ = &metrics->gauge("ncnas_watchdog_expected_eval_seconds");
  }
}

double HealthWatchdog::expected_locked() const {
  if (cfg_.expected_seconds > 0.0) return cfg_.expected_seconds;
  if (duration_count_ >= cfg_.min_samples && duration_count_ > 0) {
    return duration_sum_ / static_cast<double>(duration_count_);
  }
  return 0.0;
}

double HealthWatchdog::stall_window_locked() const {
  if (cfg_.stall_seconds > 0.0) return cfg_.stall_seconds;
  const double expected = expected_locked();
  return expected > 0.0 ? cfg_.stall_multiple * expected : 0.0;
}

void HealthWatchdog::on_event(const JournalEvent& e) {
  using T = JournalEventType;
  // Our own verdicts come back through the journal subscription; skipping
  // them before taking the lock also makes the nested dispatch re-entrant.
  if (e.type == T::kStragglerDetected || e.type == T::kAgentStalled) return;

  std::vector<StragglerVerdict> new_stragglers;
  std::vector<StallVerdict> new_stalls;
  double expected_now = 0.0;
  {
    const std::scoped_lock lock(mu_);
    now_ = std::max(now_, e.t);
    if (e.agent != kNoAgent) {
      AgentTrack& track = agents_[e.agent];
      track.last_active = std::max(track.last_active, e.t);
      track.stalled = false;  // activity clears a stall episode
    }

    if (e.type == T::kEvalFinished || e.type == T::kEvalTimeout) {
      const double duration = e.field("duration_s");
      const bool timed_out = e.type == T::kEvalTimeout || e.field("timed_out") != 0.0;
      const double expected = expected_locked();
      // A timeout is a straggler by definition (the paper's kill timer); a
      // regular completion is one when it blows the expectation multiple.
      // eval_timeout always follows eval_finished(timed_out=1) for the same
      // record, so only the timeout event is flagged to avoid double counts.
      if (e.type == T::kEvalTimeout) {
        new_stragglers.push_back({e.agent, e.t, duration, expected, true});
      } else if (!timed_out) {
        ++report_.evals_seen;
        if (expected > 0.0 && duration > cfg_.straggler_multiple * expected) {
          new_stragglers.push_back({e.agent, e.t, duration, expected, false});
        }
        duration_sum_ += duration;
        ++duration_count_;
      }
      expected_now = expected_locked();
      report_.expected_eval_seconds = expected_now;
    }

    const double window = stall_window_locked();
    if (window > 0.0) {
      for (auto& [id, track] : agents_) {
        if (id == e.agent || track.stalled) continue;
        const double silent = now_ - track.last_active;
        if (silent > window) {
          track.stalled = true;
          new_stalls.push_back({id, now_, silent, window});
        }
      }
    }
    report_.stragglers.insert(report_.stragglers.end(), new_stragglers.begin(),
                              new_stragglers.end());
    report_.stalls.insert(report_.stalls.end(), new_stalls.begin(), new_stalls.end());
  }

  // Metrics and journal emission happen outside mu_ so a concurrent report()
  // or another subscriber can never deadlock against us.
  if (expected_gauge_ != nullptr && expected_now > 0.0) expected_gauge_->set(expected_now);
  for (const StragglerVerdict& v : new_stragglers) {
    if (straggler_counter_ != nullptr) straggler_counter_->inc();
    if (journal_ != nullptr) {
      journal_->append(T::kStragglerDetected, v.t, v.agent,
                       {{"duration_s", v.duration_s},
                        {"expected_s", v.expected_s},
                        {"multiple", cfg_.straggler_multiple},
                        {"timed_out", v.timed_out ? 1.0 : 0.0}});
    }
  }
  for (const StallVerdict& v : new_stalls) {
    if (stall_counter_ != nullptr) stall_counter_->inc();
    if (journal_ != nullptr) {
      journal_->append(T::kAgentStalled, v.t, v.agent,
                       {{"silent_s", v.silent_s}, {"window_s", v.window_s}});
    }
  }
}

WatchdogReport HealthWatchdog::report() const {
  const std::scoped_lock lock(mu_);
  return report_;
}

}  // namespace ncnas::obs
