#include "ncnas/obs/exporter.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ncnas/obs/telemetry.hpp"

namespace ncnas::obs {

namespace {

// Same round-trip-exact number formatting the journal uses, as a string.
std::string fmt_number(double v) {
  std::ostringstream os;
  write_json_number(os, v);
  return os.str();
}

// OpenMetrics label-value escaping: backslash, double-quote, line feed.
void write_label_value(std::ostream& os, std::string_view v) {
  os << '"';
  for (char c : v) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

// Counter families drop the `_total` suffix on the TYPE line; the sample
// keeps it. Every ncnas counter already follows the `_total` convention.
std::string counter_family(const std::string& name) {
  constexpr std::string_view kSuffix = "_total";
  if (name.size() > kSuffix.size() &&
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
    return name.substr(0, name.size() - kSuffix.size());
  }
  return name;
}

// Registry names may carry an inline label set — `ncnas_tenant_evals_total
// {tenant="alice"}` (no space) — which is how the label-free MetricsRegistry
// serves multi-tenant metrics: one instrument per (family, label) pair.
// Splits the registered name into the bare metric name and the `{...}` label
// suffix (empty when unlabeled).
std::pair<std::string, std::string> split_inline_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, std::string()};
  return {name.substr(0, brace), name.substr(brace)};
}

}  // namespace

// ---- OpenMetrics rendering --------------------------------------------------

void render_openmetrics(const MetricsSnapshot& m, std::ostream& os,
                        const std::vector<std::pair<std::string, std::string>>& info_labels) {
  if (!info_labels.empty()) {
    os << "# TYPE ncnas_exporter_info gauge\n";
    os << "ncnas_exporter_info{";
    for (std::size_t i = 0; i < info_labels.size(); ++i) {
      if (i) os << ',';
      os << info_labels[i].first << '=';
      write_label_value(os, info_labels[i].second);
    }
    os << "} 1\n";
  }
  // The registry map is sorted, so all label variants of one family are
  // adjacent; still, the TYPE line is deduplicated by set (not by previous-
  // family comparison) so a pathological interleaving can never emit a
  // duplicate TYPE — the validator rejects those.
  std::set<std::string> declared;
  for (const CounterSample& c : m.counters) {
    const auto [bare, labels] = split_inline_labels(c.name);
    const std::string family = counter_family(bare);
    if (declared.insert(family).second) os << "# TYPE " << family << " counter\n";
    os << bare << labels << ' ' << c.value << '\n';
  }
  declared.clear();
  for (const GaugeSample& g : m.gauges) {
    const auto [bare, labels] = split_inline_labels(g.name);
    if (declared.insert(bare).second) os << "# TYPE " << bare << " gauge\n";
    os << bare << labels << ' ' << fmt_number(g.value) << '\n';
  }
  for (const HistogramSample& h : m.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      os << h.name << "_bucket{le=\"" << fmt_number(h.bounds[i]) << "\"} " << cumulative << '\n';
    }
    if (h.bounds.size() < h.buckets.size()) cumulative += h.buckets.back();
    os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << h.name << "_count " << cumulative << '\n';
    os << h.name << "_sum " << fmt_number(h.sum) << '\n';
  }
  os << "# EOF\n";
}

std::string openmetrics_text(const MetricsSnapshot& m,
                             const std::vector<std::pair<std::string, std::string>>& info_labels) {
  std::ostringstream os;
  render_openmetrics(m, os, info_labels);
  return os.str();
}

// ---- OpenMetrics validation -------------------------------------------------

namespace {

struct FamilyState {
  std::string type;  // "counter" | "gauge" | "histogram" | ...
  // histogram bookkeeping
  std::vector<double> le_edges;          // in order of appearance
  std::vector<std::uint64_t> le_counts;  // cumulative values as written
  bool has_inf = false;
  bool has_sum = false;
  bool has_count = false;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
};

bool metric_name_ok(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

bool set_error(std::string* error, std::size_t lineno, const std::string& what) {
  if (error != nullptr) *error = "line " + std::to_string(lineno) + ": " + what;
  return false;
}

// Parses `key="value",...}` starting after '{'; returns false on malformed
// syntax (including a bad escape). Fills `labels`.
bool parse_labels(std::string_view s, std::size_t& i,
                  std::vector<std::pair<std::string, std::string>>& labels) {
  for (;;) {
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    std::size_t eq = s.find('=', i);
    if (eq == std::string_view::npos) return false;
    std::string key(s.substr(i, eq - i));
    if (!metric_name_ok(key)) return false;
    i = eq + 1;
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string value;
    bool closed = false;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (i >= s.size()) return false;
        const char esc = s[i++];
        if (esc == '\\') {
          value.push_back('\\');
        } else if (esc == '"') {
          value.push_back('"');
        } else if (esc == 'n') {
          value.push_back('\n');
        } else {
          return false;  // invalid escape sequence in a label value
        }
      } else {
        value.push_back(c);
      }
    }
    if (!closed) return false;
    labels.emplace_back(std::move(key), std::move(value));
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

bool parse_value(std::string_view text, double& out) {
  if (text == "+Inf" || text == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    std::size_t used = 0;
    out = std::stod(std::string(text), &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool validate_openmetrics(std::string_view text, std::string* error) {
  if (text.empty()) return set_error(error, 0, "empty exposition");
  if (text.back() != '\n') return set_error(error, 0, "exposition does not end with a newline");
  if (text.size() < 6 || text.substr(text.size() - 6) != "# EOF\n") {
    return set_error(error, 0, "exposition does not end with '# EOF'");
  }

  std::map<std::string, FamilyState> families;
  std::size_t lineno = 0;
  bool saw_eof = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++lineno;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) return set_error(error, lineno, "unterminated line");
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;

    if (saw_eof) return set_error(error, lineno, "content after '# EOF'");
    if (line.empty()) return set_error(error, lineno, "blank line");

    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      std::istringstream meta{std::string(line)};
      std::string hash;
      std::string directive;
      std::string family;
      meta >> hash >> directive >> family;
      if (directive == "TYPE") {
        std::string type;
        meta >> type;
        if (!metric_name_ok(family)) return set_error(error, lineno, "bad family name in TYPE");
        if (type.empty()) return set_error(error, lineno, "TYPE without a type");
        if (families.count(family) != 0) {
          return set_error(error, lineno, "duplicate TYPE for family '" + family + "'");
        }
        families[family].type = type;
      } else if (directive != "HELP" && directive != "UNIT") {
        return set_error(error, lineno, "unknown comment directive '" + directive + "'");
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name(line.substr(0, i));
    if (!metric_name_ok(name)) return set_error(error, lineno, "bad metric name '" + name + "'");
    std::vector<std::pair<std::string, std::string>> labels;
    if (i < line.size() && line[i] == '{') {
      ++i;
      if (!parse_labels(line, i, labels)) {
        return set_error(error, lineno, "malformed labels on '" + name + "'");
      }
    }
    if (i >= line.size() || line[i] != ' ') {
      return set_error(error, lineno, "sample without a value");
    }
    ++i;
    const std::size_t value_end = line.find(' ', i);  // a timestamp may follow
    const std::string_view value_text =
        line.substr(i, value_end == std::string_view::npos ? line.size() - i : value_end - i);
    double value = 0.0;
    if (!parse_value(value_text, value)) {
      return set_error(error, lineno, "unparseable value '" + std::string(value_text) + "'");
    }

    // Attribute the sample to a declared family.
    std::string family;
    std::string suffix;
    for (const auto& [fam, state] : families) {
      (void)state;
      if (name == fam || (name.size() > fam.size() && name.compare(0, fam.size(), fam) == 0 &&
                          name[fam.size()] == '_')) {
        if (fam.size() > family.size()) {
          family = fam;
          suffix = name.size() > fam.size() ? name.substr(fam.size()) : "";
        }
      }
    }
    if (family.empty()) {
      return set_error(error, lineno, "sample '" + name + "' has no TYPE declaration");
    }
    FamilyState& state = families[family];
    if (state.type == "counter") {
      if (suffix != "_total" && suffix != "_created") {
        return set_error(error, lineno,
                         "counter sample '" + name + "' must end with '_total' or '_created'");
      }
      if (value < 0.0) return set_error(error, lineno, "negative counter value");
    } else if (state.type == "gauge" || state.type == "unknown") {
      if (!suffix.empty()) {
        return set_error(error, lineno, "unexpected suffix '" + suffix + "' on " + state.type);
      }
    } else if (state.type == "histogram") {
      if (suffix == "_bucket") {
        const auto le = std::find_if(labels.begin(), labels.end(),
                                     [](const auto& kv) { return kv.first == "le"; });
        if (le == labels.end()) {
          return set_error(error, lineno, "histogram bucket without an 'le' label");
        }
        double edge = 0.0;
        if (!parse_value(le->second, edge)) {
          return set_error(error, lineno, "unparseable 'le' edge '" + le->second + "'");
        }
        if (!state.le_edges.empty() && edge <= state.le_edges.back()) {
          return set_error(error, lineno, "histogram '" + family + "' bucket edges not ascending");
        }
        if (!state.le_counts.empty() && value < static_cast<double>(state.le_counts.back())) {
          return set_error(error, lineno,
                           "histogram '" + family + "' bucket counts not cumulative");
        }
        state.le_edges.push_back(edge);
        state.le_counts.push_back(static_cast<std::uint64_t>(value));
        if (std::isinf(edge) && edge > 0.0) {
          state.has_inf = true;
          state.inf_value = static_cast<std::uint64_t>(value);
        }
      } else if (suffix == "_count") {
        state.has_count = true;
        state.count_value = static_cast<std::uint64_t>(value);
      } else if (suffix == "_sum") {
        state.has_sum = true;
      } else if (suffix != "_created") {
        return set_error(error, lineno, "unexpected histogram sample '" + name + "'");
      }
    }
  }
  if (!saw_eof) return set_error(error, lineno, "missing '# EOF'");

  for (const auto& [family, state] : families) {
    if (state.type != "histogram" || state.le_edges.empty()) continue;
    if (!state.has_inf || !std::isinf(state.le_edges.back())) {
      return set_error(error, 0, "histogram '" + family + "' does not close with le=\"+Inf\"");
    }
    if (!state.has_count) {
      return set_error(error, 0, "histogram '" + family + "' has no _count sample");
    }
    if (!state.has_sum) {
      return set_error(error, 0, "histogram '" + family + "' has no _sum sample");
    }
    if (state.count_value != state.inf_value) {
      return set_error(error, 0, "histogram '" + family + "' _count disagrees with +Inf bucket");
    }
  }
  return true;
}

// ---- /progress JSON ---------------------------------------------------------

std::string progress_to_json(const ProgressSnapshot& p) {
  std::ostringstream os;
  const auto key = [&os](const char* k) {
    write_json_string(os, k);
    os << ':';
  };
  const auto num = [&](const char* k, double v) {
    key(k);
    write_json_number(os, v);
    os << ',';
  };
  const auto boolean = [&](const char* k, bool v) {
    key(k);
    os << (v ? "true" : "false") << ',';
  };
  os << '{';
  num("seq", static_cast<double>(p.seq));
  num("virtual_time", p.virtual_time);
  num("wall_time_seconds", p.wall_time_seconds);
  key("strategy");
  write_json_string(os, p.strategy);
  os << ',';
  boolean("finished", p.finished);
  boolean("converged", p.converged);
  num("evals_done", static_cast<double>(p.evals_done));
  num("real_evals", static_cast<double>(p.real_evals));
  num("cache_hits", static_cast<double>(p.cache_hits));
  num("timeouts", static_cast<double>(p.timeouts));
  num("ppo_updates", static_cast<double>(p.ppo_updates));
  num("batches_in_flight", static_cast<double>(p.batches_in_flight));
  num("best_reward", p.best_reward);
  boolean("has_best", p.has_best);
  key("top");
  os << '[';
  for (std::size_t i = 0; i < p.top.size(); ++i) {
    if (i) os << ',';
    os << "{\"arch\":";
    write_json_string(os, p.top[i].arch);
    os << ",\"reward\":";
    write_json_number(os, p.top[i].reward);
    os << ",\"params\":" << p.top[i].params << ",\"agent\":" << p.top[i].agent << '}';
  }
  os << "],";
  key("agents");
  os << '[';
  for (std::size_t i = 0; i < p.agents.size(); ++i) {
    const AgentProgress& a = p.agents[i];
    if (i) os << ',';
    os << "{\"id\":" << a.id << ",\"status\":";
    write_json_string(os, a.status);
    os << ",\"evals\":" << a.evals << ",\"cache_hits\":" << a.cache_hits
       << ",\"timeouts\":" << a.timeouts << ",\"cached_streak\":" << a.cached_streak
       << ",\"best_reward\":";
    write_json_number(os, a.best_reward);
    os << ",\"has_best\":" << (a.has_best ? "true" : "false") << '}';
  }
  os << "],";
  num("retries", static_cast<double>(p.retries));
  num("exhausted", static_cast<double>(p.exhausted));
  num("lost_results", static_cast<double>(p.lost_results));
  num("crashed_workers", static_cast<double>(p.crashed_workers));
  num("dead_agents", static_cast<double>(p.dead_agents));
  boolean("healthy", p.healthy);
  num("stragglers", static_cast<double>(p.stragglers));
  num("stalls", static_cast<double>(p.stalls));
  key("hot_scopes");
  os << '[';
  for (std::size_t i = 0; i < p.hot_scopes.size(); ++i) {
    const HotScopeProgress& h = p.hot_scopes[i];
    if (i) os << ',';
    os << "{\"name\":";
    write_json_string(os, h.name);
    os << ",\"calls\":" << h.calls << ",\"total_ms\":";
    write_json_number(os, h.total_ms);
    os << ",\"self_ms\":";
    write_json_number(os, h.self_ms);
    os << '}';
  }
  os << "],";
  num("journal_events", static_cast<double>(p.journal_events));
  key("exporter_errors");
  write_json_number(os, static_cast<double>(p.exporter_errors));
  os << "}\n";
  return os.str();
}

namespace {

// Minimal general JSON reader for the /progress payload (nas_top's poll
// path). Objects, arrays, strings, numbers, booleans, null.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_or(std::string_view key, double fallback = 0.0) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback = false) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
  }
  [[nodiscard]] std::string str_or(std::string_view key, std::string fallback = {}) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("progress json: ") + what);
  }
  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  char peek() {
    ws();
    if (i >= s.size()) fail("unexpected end of input");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++i;
  }
  bool consume(char c) {
    if (i < s.size() && peek() == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) == lit) {
      i += lit.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    JsonValue out;
    switch (peek()) {
      case '{': {
        out.kind = JsonValue::Kind::kObject;
        expect('{');
        if (!consume('}')) {
          do {
            std::string key = string_body();
            expect(':');
            out.object.emplace_back(std::move(key), value());
          } while (consume(','));
          expect('}');
        }
        break;
      }
      case '[': {
        out.kind = JsonValue::Kind::kArray;
        expect('[');
        if (!consume(']')) {
          do {
            out.array.push_back(value());
          } while (consume(','));
          expect(']');
        }
        break;
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        out.string = string_body();
        break;
      case 't':
        if (!literal("true")) fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        break;
      case 'f':
        if (!literal("false")) fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        break;
      case 'n':
        if (!literal("null")) fail("bad literal");
        break;
      default: {
        out.kind = JsonValue::Kind::kNumber;
        const std::size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
        while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
                                s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
          ++i;
        }
        if (i == start) fail("expected a value");
        try {
          out.number = std::stod(std::string(s.substr(start, i - start)));
        } catch (const std::exception&) {
          fail("unparseable number");
        }
      }
    }
    return out;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (i >= s.size()) fail("unterminated string");
      const char c = s[i++];
      if (c == '"') break;
      if (c == '\\') {
        if (i >= s.size()) fail("truncated escape");
        const char esc = s[i++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (i + 4 > s.size()) fail("truncated escape");
            out.push_back(
                static_cast<char>(std::stoi(std::string(s.substr(i, 4)), nullptr, 16)));
            i += 4;
            break;
          }
          default: out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }
};

}  // namespace

ProgressSnapshot parse_progress_json(std::string_view json) {
  JsonParser parser{json};
  const JsonValue root = parser.value();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("progress json: top level is not an object");
  }
  ProgressSnapshot p;
  p.seq = static_cast<std::uint64_t>(root.num_or("seq"));
  p.virtual_time = root.num_or("virtual_time");
  p.wall_time_seconds = root.num_or("wall_time_seconds");
  p.strategy = root.str_or("strategy");
  p.finished = root.bool_or("finished");
  p.converged = root.bool_or("converged");
  p.evals_done = static_cast<std::size_t>(root.num_or("evals_done"));
  p.real_evals = static_cast<std::size_t>(root.num_or("real_evals"));
  p.cache_hits = static_cast<std::size_t>(root.num_or("cache_hits"));
  p.timeouts = static_cast<std::size_t>(root.num_or("timeouts"));
  p.ppo_updates = static_cast<std::size_t>(root.num_or("ppo_updates"));
  p.batches_in_flight = static_cast<std::size_t>(root.num_or("batches_in_flight"));
  p.best_reward = static_cast<float>(root.num_or("best_reward"));
  p.has_best = root.bool_or("has_best");
  if (const JsonValue* top = root.get("top"); top != nullptr) {
    for (const JsonValue& t : top->array) {
      TopArchProgress out;
      out.arch = t.str_or("arch");
      out.reward = static_cast<float>(t.num_or("reward"));
      out.params = static_cast<std::size_t>(t.num_or("params"));
      out.agent = static_cast<std::uint32_t>(t.num_or("agent"));
      p.top.push_back(std::move(out));
    }
  }
  if (const JsonValue* agents = root.get("agents"); agents != nullptr) {
    for (const JsonValue& a : agents->array) {
      AgentProgress out;
      out.id = static_cast<std::uint32_t>(a.num_or("id"));
      out.status = a.str_or("status");
      out.evals = static_cast<std::size_t>(a.num_or("evals"));
      out.cache_hits = static_cast<std::size_t>(a.num_or("cache_hits"));
      out.timeouts = static_cast<std::size_t>(a.num_or("timeouts"));
      out.cached_streak = static_cast<std::size_t>(a.num_or("cached_streak"));
      out.best_reward = static_cast<float>(a.num_or("best_reward"));
      out.has_best = a.bool_or("has_best");
      p.agents.push_back(std::move(out));
    }
  }
  p.retries = static_cast<std::size_t>(root.num_or("retries"));
  p.exhausted = static_cast<std::size_t>(root.num_or("exhausted"));
  p.lost_results = static_cast<std::size_t>(root.num_or("lost_results"));
  p.crashed_workers = static_cast<std::size_t>(root.num_or("crashed_workers"));
  p.dead_agents = static_cast<std::size_t>(root.num_or("dead_agents"));
  p.healthy = root.bool_or("healthy", true);
  p.stragglers = static_cast<std::size_t>(root.num_or("stragglers"));
  p.stalls = static_cast<std::size_t>(root.num_or("stalls"));
  if (const JsonValue* hot = root.get("hot_scopes"); hot != nullptr) {
    for (const JsonValue& h : hot->array) {
      HotScopeProgress out;
      out.name = h.str_or("name");
      out.calls = static_cast<std::uint64_t>(h.num_or("calls"));
      out.total_ms = h.num_or("total_ms");
      out.self_ms = h.num_or("self_ms");
      p.hot_scopes.push_back(std::move(out));
    }
  }
  p.journal_events = static_cast<std::uint64_t>(root.num_or("journal_events"));
  p.exporter_errors = static_cast<std::uint64_t>(root.num_or("exporter_errors"));
  return p;
}

// ---- SnapshotBus ------------------------------------------------------------

void SnapshotBus::add_sink(Sink sink) {
  const std::scoped_lock lock(mu_);
  sinks_.push_back(std::move(sink));
}

std::uint64_t SnapshotBus::publish(PublishedSnapshot snap) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.seq = seq;
  snap.progress.seq = seq;
  if (cadence_ > 0.0) {
    // Land the next publication on the first cadence boundary strictly after
    // this tick — pure arithmetic on the virtual clock, so the schedule is
    // deterministic regardless of wall time.
    const double next = (std::floor(snap.virtual_time / cadence_) + 1.0) * cadence_;
    next_due_.store(next, std::memory_order_relaxed);
  }
  const std::scoped_lock lock(mu_);
  for (const Sink& sink : sinks_) sink(snap);
  return seq;
}

// ---- Exporter facade --------------------------------------------------------

Exporter::Exporter(ExporterConfig cfg, Telemetry& telemetry)
    : cfg_(std::move(cfg)),
      telemetry_(&telemetry),
      errors_(&telemetry.metrics().counter("ncnas_exporter_errors_total")),
      bus_(cfg_.cadence_seconds) {
  bus_.add_sink([this](const PublishedSnapshot& snap) { render_payloads(snap); });
  if (!cfg_.live_journal_path.empty()) {
    Journal& journal = telemetry.enable_journal();
    if (!journal.open_live_export(cfg_.live_journal_path, cfg_.live_journal_append, errors_)) {
      std::cerr << "ncnas exporter: cannot open live journal '" << cfg_.live_journal_path
                << "'; live tailing disabled, search continues\n";
    }
  }
  if (cfg_.http_port >= 0) {
    {
      // Pre-publication defaults: /metrics must still be a valid (empty)
      // OpenMetrics exposition the moment the server comes up.
      const std::scoped_lock lock(payload_mu_);
      metrics_text_ = "# EOF\n";
      progress_json_ = "{}\n";
    }
    http_ = std::make_unique<HttpExporter>(
        cfg_.bind_address, cfg_.http_port,
        [this](const std::string& path) -> std::tuple<int, std::string, std::string> {
          if (path == "/metrics") {
            return {200, "application/openmetrics-text; version=1.0.0; charset=utf-8",
                    metrics_text()};
          }
          if (path == "/progress") return {200, "application/json", progress_json()};
          if (path == "/healthz") return {healthz_status(), "text/plain; charset=utf-8",
                                          healthz_body()};
          {
            const std::scoped_lock lock(payload_mu_);
            if (const auto it = custom_payloads_.find(path); it != custom_payloads_.end()) {
              return {200, it->second.first, it->second.second};
            }
          }
          return {404, "text/plain; charset=utf-8", "not found\n"};
        },
        errors_);
  }
}

Exporter::~Exporter() {
  if (http_) http_->stop();
  if (!cfg_.live_journal_path.empty() && telemetry_->journal() != nullptr) {
    telemetry_->journal()->close_live_export();
  }
}

void Exporter::tick(double vt, ProgressSnapshot progress) {
  if (!bus_.due(vt)) return;
  publish(vt, std::move(progress));
}

void Exporter::publish(double vt, ProgressSnapshot progress) {
  // Publication times never rewind. The driver keeps harvesting in-flight
  // completions past the wall-time deadline (their ticks publish at t >
  // wall_time), but the final flush comes in at the deadline-clamped
  // end_time; clamping here keeps every consumer's timeline monotone.
  vt = std::max(vt, last_vt_);
  last_vt_ = vt;
  PublishedSnapshot snap;
  snap.virtual_time = vt;
  snap.metrics = telemetry_->metrics().snapshot();
  if (const Journal* journal = telemetry_->journal(); journal != nullptr) {
    snap.journal_offset = journal_seen_;
    snap.journal_delta = journal->snapshot_since(journal_seen_);
    journal_seen_ += snap.journal_delta.size();
  }
  if (const HealthWatchdog* watchdog = telemetry_->watchdog(); watchdog != nullptr) {
    const WatchdogReport report = watchdog->report();
    progress.healthy = report.healthy();
    progress.stragglers = report.stragglers.size();
    progress.stalls = report.stalls.size();
  }
  if (Profiler* profiler = telemetry_->profiler(); profiler != nullptr) {
    const std::vector<FlatProfileEntry> flat = profiler->snapshot().flat();
    for (std::size_t i = 0; i < flat.size() && i < cfg_.hot_scopes; ++i) {
      progress.hot_scopes.push_back({flat[i].name, flat[i].calls, flat[i].total_ms,
                                     flat[i].self_ms});
    }
  }
  progress.virtual_time = vt;
  progress.journal_events = journal_seen_;
  progress.exporter_errors = errors_->value();
  snap.progress = std::move(progress);
  bus_.publish(std::move(snap));
}

void Exporter::render_payloads(const PublishedSnapshot& snap) {
  std::vector<std::pair<std::string, std::string>> info;
  if (!snap.progress.strategy.empty()) info.emplace_back("strategy", snap.progress.strategy);
  std::string metrics = openmetrics_text(snap.metrics, info);
  std::string progress = progress_to_json(snap.progress);
  std::string health;
  int status = 200;
  if (snap.progress.healthy) {
    health = snap.progress.finished ? "ok: run finished\n" : "ok\n";
  } else {
    status = 503;
    health = "unhealthy: " + std::to_string(snap.progress.stragglers) + " straggler(s), " +
             std::to_string(snap.progress.stalls) + " stall(s)\n";
  }
  const std::scoped_lock lock(payload_mu_);
  metrics_text_ = std::move(metrics);
  progress_json_ = std::move(progress);
  healthz_body_ = std::move(health);
  healthz_status_ = status;
}

std::string Exporter::metrics_text() const {
  const std::scoped_lock lock(payload_mu_);
  return metrics_text_;
}

std::string Exporter::progress_json() const {
  const std::scoped_lock lock(payload_mu_);
  return progress_json_;
}

std::string Exporter::healthz_body() const {
  const std::scoped_lock lock(payload_mu_);
  return healthz_body_;
}

int Exporter::healthz_status() const {
  const std::scoped_lock lock(payload_mu_);
  return healthz_status_;
}

void Exporter::set_payload(const std::string& path, std::string content_type,
                           std::string body) {
  if (path == "/metrics" || path == "/progress" || path == "/healthz") return;
  const std::scoped_lock lock(payload_mu_);
  custom_payloads_[path] = {std::move(content_type), std::move(body)};
}

std::string Exporter::payload(const std::string& path) const {
  const std::scoped_lock lock(payload_mu_);
  const auto it = custom_payloads_.find(path);
  return it != custom_payloads_.end() ? it->second.second : std::string();
}

}  // namespace ncnas::obs
