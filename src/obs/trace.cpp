#include "ncnas/obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ncnas::obs {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("TraceRecorder: capacity must be positive");
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceRecorder::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void TraceRecorder::span(std::string name, std::string cat, double start_s, double dur_s,
                         std::uint32_t tid, std::vector<TraceArg> args) {
  record({std::move(name), std::move(cat), 'X', start_s * 1e6, dur_s * 1e6, tid,
          std::move(args)});
}

void TraceRecorder::instant(std::string name, std::string cat, double ts_s, std::uint32_t tid,
                            std::vector<TraceArg> args) {
  record({std::move(name), std::move(cat), 'i', ts_s * 1e6, 0.0, tid, std::move(args)});
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // JSON has no Inf/NaN; clamp rather than emit invalid output
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    std::ostringstream tmp;
    tmp << std::setprecision(12) << v;
    os << tmp.str();
  }
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  write_escaped(os, e.name);
  os << ",\"cat\":";
  write_escaped(os, e.cat);
  os << ",\"ph\":\"" << e.phase << "\",\"ts\":";
  write_json_number(os, e.ts_us);
  if (e.phase == 'X') {
    os << ",\"dur\":";
    write_json_number(os, e.dur_us);
  } else {
    os << ",\"s\":\"t\"";  // instant scope: thread
  }
  os << ",\"pid\":0,\"tid\":" << e.tid;
  if (!e.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i) os << ',';
      write_escaped(os, e.args[i].key);
      os << ':';
      write_json_number(os, e.args[i].value);
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void TraceRecorder::export_chrome(const std::vector<TraceEvent>& events, std::ostream& os,
                                  std::uint64_t dropped) {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) os << ',';
    os << '\n';
    write_event(os, events[i]);
  }
  os << "\n],\"otherData\":{\"droppedEvents\":" << dropped
     << "},\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::export_jsonl(const std::vector<TraceEvent>& events, std::ostream& os,
                                 std::uint64_t dropped) {
  for (const TraceEvent& e : events) {
    write_event(os, e);
    os << '\n';
  }
  if (dropped > 0) {
    os << "{\"meta\":\"ncnas.trace\",\"dropped\":" << dropped << "}\n";
  }
}

}  // namespace ncnas::obs
