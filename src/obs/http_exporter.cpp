// Minimal blocking-socket HTTP/1.1 server + client for the exporter. One
// short-lived connection at a time, Connection: close — the endpoints serve
// pre-rendered strings, so there is nothing to gain from concurrency and
// everything to lose (a slow scraper must never hold telemetry locks).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "ncnas/obs/exporter.hpp"

namespace ncnas::obs {

namespace {

void count_error(Counter* counter) {
  if (counter != nullptr) counter->inc();
}

bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

}  // namespace

HttpExporter::HttpExporter(const std::string& bind_address, int port, Handler handler,
                           Counter* error_counter)
    : handler_(std::move(handler)), errors_(error_counter) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "ncnas exporter: socket() failed (" << std::strerror(errno)
              << "); live endpoints disabled, search continues\n";
    count_error(errors_);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    std::cerr << "ncnas exporter: bad bind address '" << bind_address
              << "'; live endpoints disabled, search continues\n";
    count_error(errors_);
    ::close(fd);
    return;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    std::cerr << "ncnas exporter: cannot serve on " << bind_address << ':' << port << " ("
              << std::strerror(errno) << "); live endpoints disabled, search continues\n";
    count_error(errors_);
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    count_error(errors_);
    ::close(fd);
    return;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  thread_ = std::make_unique<std::thread>([this] { serve(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_ && thread_->joinable()) thread_->join();
  thread_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);  // short timeout so stop() is prompt
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!stop_.load(std::memory_order_relaxed)) count_error(errors_);
      continue;
    }
    std::string request;
    char buf[2048];
    while (request.find("\r\n\r\n") == std::string::npos && request.size() < 16384) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    int status = 400;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "bad request\n";
    if (request.rfind("GET ", 0) == 0) {
      const std::size_t path_end = request.find(' ', 4);
      if (path_end != std::string::npos) {
        std::tie(status, content_type, body) = handler_(request.substr(4, path_end - 4));
      }
    } else if (!request.empty()) {
      status = 405;
      body = "only GET is supported\n";
    }
    std::ostringstream head;
    head << "HTTP/1.1 " << status << ' ' << status_text(status) << "\r\n"
         << "Content-Type: " << content_type << "\r\n"
         << "Content-Length: " << body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    const std::string head_str = head.str();
    if (!send_all(conn, head_str.data(), head_str.size()) ||
        !send_all(conn, body.data(), body.size())) {
      count_error(errors_);
    }
    ::close(conn);
  }
}

std::optional<std::string> http_get(const std::string& host, int port, const std::string& path,
                                    int* status_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/", 0) != 0) return std::nullopt;
  if (status_out != nullptr) {
    const std::size_t sp = response.find(' ');
    *status_out = sp == std::string::npos ? 0 : std::atoi(response.c_str() + sp + 1);
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return std::nullopt;
  return response.substr(body_at + 4);
}

}  // namespace ncnas::obs
