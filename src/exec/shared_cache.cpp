#include "ncnas/exec/shared_cache.hpp"

#include <cstdio>

namespace ncnas::exec {
namespace {

// Canonical double formatting: shortest round-trippable form, so context keys
// are stable across writers and platforms.
std::string canon(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string eval_context_key(const data::Dataset& dataset, const FidelityConfig& fidelity,
                             const CostModel& cost) {
  std::string key = "ds=";
  key += dataset.name;
  key += ':';
  for (std::size_t i = 0; i < dataset.input_count(); ++i) {
    if (i != 0) key += ',';
    key += std::to_string(dataset.input_dim(i));
  }
  key += ':';
  key += std::to_string(dataset.train_rows());
  key += 'x';
  key += std::to_string(dataset.valid_rows());
  key += ":m";
  key += std::to_string(static_cast<int>(dataset.metric));
  key += "|fid=e";
  key += std::to_string(fidelity.epochs);
  key += ":sf";
  key += canon(fidelity.subset_fraction);
  key += ":lr";
  key += canon(static_cast<double>(fidelity.learning_rate));
  key += ":bs";
  key += std::to_string(fidelity.batch_size != 0 ? fidelity.batch_size : dataset.batch_size);
  key += ":vf";
  key += canon(fidelity.valid_fraction);
  key += "|cost=su";
  key += canon(cost.startup_seconds);
  key += ":spm";
  key += canon(cost.seconds_per_megaunit);
  key += ":j";
  key += canon(cost.jitter_frac);
  key += ":to";
  key += canon(cost.timeout_seconds);
  return key;
}

std::string SharedEvalCache::map_key(const std::string& context_key,
                                     const std::string& arch_key) {
  std::string key;
  key.reserve(context_key.size() + 1 + arch_key.size());
  key += context_key;
  key += '\x1f';
  key += arch_key;
  return key;
}

std::optional<EvalResult> SharedEvalCache::lookup(const std::string& context_key,
                                                  const std::string& arch_key,
                                                  std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(map_key(context_key, arch_key));
  Stats& s = stats_[tenant];
  if (it == entries_.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  if (it->second.owner != tenant) ++s.cross_tenant_hits;
  EvalResult hit = it->second.result;
  hit.cache_hit = true;
  hit.shared_hit = true;
  return hit;
}

void SharedEvalCache::insert(const std::string& context_key, const std::string& arch_key,
                             std::uint32_t tenant, const EvalResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  EvalResult stored = result;
  stored.cache_hit = false;
  stored.shared_hit = false;
  const auto [it, inserted] = entries_.emplace(map_key(context_key, arch_key),
                                               Entry{stored, tenant, next_ins_});
  if (!inserted) return;  // first writer wins; no new insertion slot
  order_.emplace(next_ins_, it->first);
  ++next_ins_;
  ++stats_[tenant].inserts;
  evict_to_bound_locked();
}

// FIFO eviction down to the bound. The just-inserted entry carries the
// largest sequence, so it is never the victim (a cache of max_entries >= 1
// always retains what it just stored).
void SharedEvalCache::evict_to_bound_locked() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_ && !order_.empty()) {
    const auto oldest = order_.begin();
    const auto it = entries_.find(oldest->second);
    if (it != entries_.end()) {
      ++stats_[it->second.owner].evictions;
      entries_.erase(it);
    }
    order_.erase(oldest);
  }
}

void SharedEvalCache::erase(const std::string& context_key, const std::string& arch_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(map_key(context_key, arch_key));
  if (it == entries_.end()) return;
  ++stats_[it->second.owner].erases;
  order_.erase(it->second.ins);
  entries_.erase(it);
}

std::size_t SharedEvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SharedEvalCache::Stats SharedEvalCache::stats(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stats_.find(tenant);
  return it != stats_.end() ? it->second : Stats{};
}

SharedEvalCache::Stats SharedEvalCache::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  for (const auto& [tenant, s] : stats_) {
    (void)tenant;
    out.hits += s.hits;
    out.misses += s.misses;
    out.inserts += s.inserts;
    out.cross_tenant_hits += s.cross_tenant_hits;
    out.erases += s.erases;
    out.evictions += s.evictions;
  }
  return out;
}

void SharedEvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  order_.clear();
  next_ins_ = 0;
  stats_.clear();
}

}  // namespace ncnas::exec
