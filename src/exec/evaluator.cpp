#include "ncnas/exec/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/obs/profiler.hpp"

namespace ncnas::exec {

space::TaskHead head_for(const data::Dataset& ds) {
  if (ds.metric == nn::Metric::kAccuracy) {
    return space::TaskHead::classification(2);
  }
  return space::TaskHead::regression();
}

TrainingEvaluator::TrainingEvaluator(const space::SearchSpace& space,
                                     const data::Dataset& dataset, FidelityConfig fidelity,
                                     CostModel cost)
    : space_(&space), dataset_(&dataset), fidelity_(fidelity), cost_(cost) {}

void TrainingEvaluator::set_telemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    train_wall_ms_ = nullptr;
    trainings_ = nullptr;
    training_timeouts_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics();
  train_wall_ms_ = &m.histogram("ncnas_train_wall_ms", obs::exp_buckets(0.25, 2.0, 18));
  trainings_ = &m.counter("ncnas_trainings_total");
  training_timeouts_ = &m.counter("ncnas_training_timeouts_total");
}

std::string TrainingEvaluator::context_key() const {
  return eval_context_key(*dataset_, fidelity_, cost_);
}

float TrainingEvaluator::reward_floor() const noexcept {
  return dataset_->metric == nn::Metric::kR2 ? -1.0f : 0.0f;
}

nn::Graph TrainingEvaluator::build(const space::ArchEncoding& arch, std::uint64_t seed) const {
  tensor::Rng rng(seed);
  std::vector<std::size_t> dims;
  dims.reserve(dataset_->input_count());
  for (std::size_t i = 0; i < dataset_->input_count(); ++i) dims.push_back(dataset_->input_dim(i));
  return space::build_model(*space_, arch, dims, head_for(*dataset_), rng);
}

EvalResult TrainingEvaluator::evaluate(const space::ArchEncoding& arch,
                                       std::uint64_t seed) const {
  NCNAS_PROF_SCOPE("eval");
  const std::string key = space::arch_key(arch);
  nn::Graph model = build(arch, seed);

  // Materialize lazily-initialized weights with a single-row forward so the
  // trainable-parameter count (which drives the cost model) is exact.
  {
    NCNAS_PROF_SCOPE("eval/build");
    std::vector<tensor::Tensor> probe;
    probe.reserve(dataset_->input_count());
    for (const tensor::Tensor& x : dataset_->x_train) probe.push_back(nn::slice_rows(x, 0, 1));
    nn::ForwardCtx ctx{.training = false, .rng = nullptr};
    (void)model.forward(probe, ctx);
  }

  EvalResult result;
  result.params = model.param_count();

  const auto samples = static_cast<std::size_t>(std::max(
      1.0, fidelity_.subset_fraction * static_cast<double>(dataset_->train_rows())));
  result.sim_duration = cost_.duration(result.params, samples, fidelity_.epochs, key);
  if (cost_.times_out(result.sim_duration)) {
    // Balsam kills the job at the timeout: the worker was occupied for the
    // full timeout window and the agent sees the floor reward.
    result.sim_duration = cost_.timeout_seconds;
    result.timed_out = true;
    result.reward = reward_floor();
    if (training_timeouts_ != nullptr) training_timeouts_->inc();
    return result;
  }

  std::optional<obs::Stopwatch> train_timer;
  if (train_wall_ms_ != nullptr) train_timer.emplace();
  if (trainings_ != nullptr) trainings_->inc();
  tensor::Rng train_rng = tensor::Rng(seed).split(1);
  nn::TrainOptions opts;
  opts.epochs = fidelity_.epochs;
  opts.batch_size = fidelity_.batch_size != 0 ? fidelity_.batch_size : dataset_->batch_size;
  opts.learning_rate = fidelity_.learning_rate;
  opts.loss = dataset_->loss;
  opts.subset_fraction = fidelity_.subset_fraction;
  {
    // Same region as the train_wall_ms stopwatch's training half, so
    // analyze_log can reconcile profile totals against journal wall time.
    NCNAS_PROF_SCOPE("eval/train");
    (void)nn::fit(model, dataset_->x_train, dataset_->y_train, opts, train_rng);
  }

  const auto valid_rows = static_cast<std::size_t>(std::max(
      1.0, fidelity_.valid_fraction * static_cast<double>(dataset_->valid_rows())));
  float metric;
  {
    NCNAS_PROF_SCOPE("eval/validate");
    if (valid_rows >= dataset_->valid_rows()) {
      metric = nn::evaluate(model, dataset_->x_valid, dataset_->y_valid, dataset_->metric);
    } else {
      std::vector<tensor::Tensor> xv;
      xv.reserve(dataset_->input_count());
      for (const tensor::Tensor& x : dataset_->x_valid) {
        xv.push_back(nn::slice_rows(x, 0, valid_rows));
      }
      metric = nn::evaluate(model, xv, nn::slice_rows(dataset_->y_valid, 0, valid_rows),
                            dataset_->metric);
    }
  }
  if (reward_fn_) {
    const RewardInputs inputs{metric, result.params, result.sim_duration};
    result.reward = std::max(reward_fn_(inputs), reward_floor());
  } else {
    result.reward = std::max(metric, reward_floor());
  }
  if (train_timer) {
    result.train_wall_ms = train_timer->elapsed_ms();
    train_wall_ms_->observe(result.train_wall_ms);
  }
  return result;
}

RewardFn size_penalized_reward(float weight, std::size_t ref_params) {
  return [weight, ref_params](const RewardInputs& in) {
    if (in.params <= ref_params || ref_params == 0) return in.metric;
    const float excess = std::log10(static_cast<float>(in.params) /
                                    static_cast<float>(ref_params));
    return in.metric - weight * excess;
  };
}

void CachedEvaluator::set_telemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    lookup_hits_ = nullptr;
    lookup_misses_ = nullptr;
    inserts_ = nullptr;
    erases_counter_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics();
  lookup_hits_ = &m.counter("ncnas_eval_cache_hits_total");
  lookup_misses_ = &m.counter("ncnas_eval_cache_misses_total");
  inserts_ = &m.counter("ncnas_eval_cache_inserts_total");
  erases_counter_ = &m.counter("ncnas_eval_cache_erases_total");
}

std::string CachedEvaluator::map_key(const space::ArchEncoding& arch) const {
  std::string key = space::arch_key(arch);
  if (context_key_.empty()) return key;
  std::string out;
  out.reserve(context_key_.size() + 1 + key.size());
  out += context_key_;
  out += '\x1f';
  out += key;
  return out;
}

EvalResult CachedEvaluator::evaluate(const space::ArchEncoding& arch, std::uint64_t seed) const {
  const std::string key = map_key(arch);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    if (lookup_hits_ != nullptr) lookup_hits_->inc();
    EvalResult hit = it->second;
    hit.cache_hit = true;
    return hit;
  }
  ++misses_;
  if (lookup_misses_ != nullptr) lookup_misses_->inc();
  EvalResult result = inner_->evaluate(arch, seed);
  cache_.emplace(key, result);
  if (inserts_ != nullptr) inserts_->inc();
  return result;
}

std::optional<EvalResult> CachedEvaluator::lookup(const space::ArchEncoding& arch) const {
  const auto it = cache_.find(map_key(arch));
  if (it == cache_.end()) {
    ++misses_;
    if (lookup_misses_ != nullptr) lookup_misses_->inc();
    return std::nullopt;
  }
  ++hits_;
  if (lookup_hits_ != nullptr) lookup_hits_->inc();
  EvalResult hit = it->second;
  hit.cache_hit = true;
  return hit;
}

void CachedEvaluator::insert(const space::ArchEncoding& arch, const EvalResult& result) const {
  cache_.emplace(map_key(arch), result);
  if (inserts_ != nullptr) inserts_->inc();
}

void CachedEvaluator::erase(const space::ArchEncoding& arch) const {
  if (cache_.erase(map_key(arch)) != 0) {
    ++erases_;
    if (erases_counter_ != nullptr) erases_counter_->inc();
  }
}

void CachedEvaluator::clear() {
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
  erases_ = 0;
}

CachedEvaluator::State CachedEvaluator::export_state() const {
  State out;
  out.entries.assign(cache_.begin(), cache_.end());
  std::sort(out.entries.begin(), out.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.hits = hits_;
  out.misses = misses_;
  return out;
}

void CachedEvaluator::import_state(const State& state) {
  cache_.clear();
  for (const auto& [key, result] : state.entries) cache_.emplace(key, result);
  hits_ = state.hits;
  misses_ = state.misses;
}

}  // namespace ncnas::exec
