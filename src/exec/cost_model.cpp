#include "ncnas/exec/cost_model.hpp"

#include <functional>

namespace ncnas::exec {

double CostModel::duration(std::size_t params, std::size_t samples, std::size_t epochs,
                           const std::string& arch_key) const {
  const double units = static_cast<double>(params) * static_cast<double>(samples) *
                       static_cast<double>(epochs) / 1e6;
  // Deterministic multiplicative jitter in [1 - jitter, 1 + jitter].
  const std::size_t h = std::hash<std::string>{}(arch_key);
  const double u = static_cast<double>(h % 10007u) / 10006.0;  // [0, 1]
  const double jitter = 1.0 + jitter_frac * (2.0 * u - 1.0);
  return startup_seconds + seconds_per_megaunit * units * jitter;
}

}  // namespace ncnas::exec
