#include "ncnas/exec/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace ncnas::exec {

namespace {

// FNV-1a over the architecture key: a stable, library-independent string
// hash, so fault verdicts don't vary with the standard library's
// std::hash the way they must not vary with evaluation order.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// SplitMix64 finalizer: one multiply-xor avalanche, the same generator the
// tensor Rng uses for seeding. Turns structured site coordinates into
// decorrelated 64-bit verdict streams.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from the top 53 bits.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::empty() const {
  return worker_crashes.empty() && eval_failure_prob <= 0.0 && slowdown_prob <= 0.0 &&
         lost_result_prob <= 0.0 && ps_drop_prob <= 0.0 && ps_delay_prob <= 0.0;
}

std::string FaultPlan::fingerprint() const {
  std::ostringstream os;
  os << seed << ';' << eval_failure_prob << ',' << slowdown_prob << ',' << slowdown_multiple
     << ',' << lost_result_prob << ';' << ps_drop_prob << ',' << ps_delay_prob << ','
     << ps_delay_seconds << ';' << max_retries << ',' << backoff_base_seconds << ','
     << backoff_cap_seconds << ',' << barrier_timeout_seconds << ";c" << worker_crashes.size();
  for (const WorkerCrash& c : worker_crashes) {
    os << ',' << c.agent << ':' << c.worker << '@' << c.time;
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), enabled_(!plan_.empty()) {}

FaultInjector::TaskFault FaultInjector::task_fault(std::size_t agent,
                                                   const std::string& arch_key,
                                                   std::size_t attempt) const {
  TaskFault f;
  if (!enabled_) return f;
  const std::uint64_t base =
      mix(plan_.seed ^ mix(fnv1a(arch_key)) ^ mix(0xa11ce000u + agent) ^
          mix(0x7a5c0000u + attempt));
  f.fail = unit(mix(base ^ 1)) < plan_.eval_failure_prob;
  f.fail_frac = 0.1 + 0.8 * unit(mix(base ^ 2));
  // A lost result is only meaningful for a task that would have finished.
  f.lost = !f.fail && unit(mix(base ^ 3)) < plan_.lost_result_prob;
  f.slowdown = unit(mix(base ^ 4)) < plan_.slowdown_prob ? plan_.slowdown_multiple : 1.0;
  return f;
}

FaultInjector::ExchangeFault FaultInjector::exchange_fault(std::size_t agent,
                                                           std::uint64_t round) const {
  ExchangeFault f;
  if (!enabled_) return f;
  const std::uint64_t base = mix(plan_.seed ^ mix(0xe8c40000u + agent) ^ mix(round));
  if (unit(mix(base ^ 1)) < plan_.ps_drop_prob) {
    f.drop = true;
    return f;
  }
  if (unit(mix(base ^ 2)) < plan_.ps_delay_prob) f.delay_seconds = plan_.ps_delay_seconds;
  return f;
}

double FaultInjector::crash_time(std::size_t agent, std::size_t worker) const {
  double when = std::numeric_limits<double>::infinity();
  for (const WorkerCrash& c : plan_.worker_crashes) {
    if (c.agent == agent && c.worker == worker) when = std::min(when, std::max(0.0, c.time));
  }
  return when;
}

double FaultInjector::backoff(std::size_t attempt) const {
  if (attempt == 0) return 0.0;
  const double exp = plan_.backoff_base_seconds * std::ldexp(1.0, static_cast<int>(attempt) - 1);
  return std::min(plan_.backoff_cap_seconds, exp);
}

}  // namespace ncnas::exec
