#include "ncnas/exec/utilization.hpp"

#include <algorithm>
#include <stdexcept>

namespace ncnas::exec {

UtilizationMonitor::UtilizationMonitor(std::size_t total_workers)
    : total_workers_(total_workers) {
  if (total_workers == 0) {
    throw std::invalid_argument("UtilizationMonitor: need at least one worker");
  }
}

void UtilizationMonitor::add_busy_interval(double start, double end) {
  if (end < start) throw std::invalid_argument("UtilizationMonitor: end < start");
  if (end == start) return;
  intervals_.push_back({start, end});
  busy_seconds_ += end - start;
}

void UtilizationMonitor::add_capacity_loss(double from) {
  if (from < 0.0) throw std::invalid_argument("UtilizationMonitor: negative loss time");
  if (losses_.size() >= total_workers_) {
    throw std::invalid_argument("UtilizationMonitor: more losses than workers");
  }
  losses_.push_back(from);
}

std::vector<double> UtilizationMonitor::series(double t_end, double bucket_seconds) const {
  if (bucket_seconds <= 0.0 || t_end <= 0.0) {
    throw std::invalid_argument("UtilizationMonitor::series: positive spans required");
  }
  const std::size_t buckets =
      static_cast<std::size_t>((t_end + bucket_seconds - 1e-9) / bucket_seconds);
  std::vector<double> busy(buckets, 0.0);
  for (const Interval& iv : intervals_) {
    const double lo = std::max(0.0, iv.start);
    const double hi = std::min(t_end, iv.end);
    if (hi <= lo) continue;
    std::size_t b = static_cast<std::size_t>(lo / bucket_seconds);
    double cursor = lo;
    while (cursor < hi && b < buckets) {
      const double bucket_end = static_cast<double>(b + 1) * bucket_seconds;
      const double seg_end = std::min(hi, bucket_end);
      busy[b] += seg_end - cursor;
      cursor = seg_end;
      ++b;
    }
  }
  // Dead workers stop contributing capacity from their loss time on; a
  // fault-free run has no losses and the arithmetic is unchanged.
  std::vector<double> lost(buckets, 0.0);
  for (const double from : losses_) {
    const double lo = std::max(0.0, from);
    if (lo >= t_end) continue;
    std::size_t b = static_cast<std::size_t>(lo / bucket_seconds);
    double cursor = lo;
    while (cursor < t_end && b < buckets) {
      const double bucket_end = static_cast<double>(b + 1) * bucket_seconds;
      const double seg_end = std::min(t_end, bucket_end);
      lost[b] += seg_end - cursor;
      cursor = seg_end;
      ++b;
    }
  }
  const double full = static_cast<double>(total_workers_) * bucket_seconds;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double denom = full - lost[b];
    busy[b] = denom > 0.0 ? busy[b] / denom : 0.0;
  }
  return busy;
}

UtilizationMonitor::State UtilizationMonitor::export_state() const {
  State out;
  out.intervals.reserve(intervals_.size());
  for (const Interval& iv : intervals_) out.intervals.emplace_back(iv.start, iv.end);
  out.losses = losses_;
  out.busy_seconds = busy_seconds_;
  return out;
}

void UtilizationMonitor::import_state(const State& state) {
  if (state.losses.size() > total_workers_) {
    throw std::invalid_argument("UtilizationMonitor: more losses than workers");
  }
  intervals_.clear();
  intervals_.reserve(state.intervals.size());
  for (const auto& [start, end] : state.intervals) intervals_.push_back({start, end});
  losses_ = state.losses;
  busy_seconds_ = state.busy_seconds;
}

double UtilizationMonitor::average(double t_end) const {
  if (t_end <= 0.0) return 0.0;
  double busy = 0.0;
  for (const Interval& iv : intervals_) {
    busy += std::max(0.0, std::min(t_end, iv.end) - std::max(0.0, iv.start));
  }
  double denom = static_cast<double>(total_workers_) * t_end;
  for (const double from : losses_) denom -= std::max(0.0, t_end - std::max(0.0, from));
  return denom > 0.0 ? busy / denom : 0.0;
}

}  // namespace ncnas::exec
