#include "ncnas/exec/utilization.hpp"

#include <algorithm>
#include <stdexcept>

namespace ncnas::exec {

UtilizationMonitor::UtilizationMonitor(std::size_t total_workers)
    : total_workers_(total_workers) {
  if (total_workers == 0) {
    throw std::invalid_argument("UtilizationMonitor: need at least one worker");
  }
}

void UtilizationMonitor::add_busy_interval(double start, double end) {
  if (end < start) throw std::invalid_argument("UtilizationMonitor: end < start");
  if (end == start) return;
  intervals_.push_back({start, end});
  busy_seconds_ += end - start;
}

std::vector<double> UtilizationMonitor::series(double t_end, double bucket_seconds) const {
  if (bucket_seconds <= 0.0 || t_end <= 0.0) {
    throw std::invalid_argument("UtilizationMonitor::series: positive spans required");
  }
  const std::size_t buckets =
      static_cast<std::size_t>((t_end + bucket_seconds - 1e-9) / bucket_seconds);
  std::vector<double> busy(buckets, 0.0);
  for (const Interval& iv : intervals_) {
    const double lo = std::max(0.0, iv.start);
    const double hi = std::min(t_end, iv.end);
    if (hi <= lo) continue;
    std::size_t b = static_cast<std::size_t>(lo / bucket_seconds);
    double cursor = lo;
    while (cursor < hi && b < buckets) {
      const double bucket_end = static_cast<double>(b + 1) * bucket_seconds;
      const double seg_end = std::min(hi, bucket_end);
      busy[b] += seg_end - cursor;
      cursor = seg_end;
      ++b;
    }
  }
  const double denom = static_cast<double>(total_workers_) * bucket_seconds;
  for (double& v : busy) v /= denom;
  return busy;
}

double UtilizationMonitor::average(double t_end) const {
  if (t_end <= 0.0) return 0.0;
  double busy = 0.0;
  for (const Interval& iv : intervals_) {
    busy += std::max(0.0, std::min(t_end, iv.end) - std::max(0.0, iv.start));
  }
  return busy / (static_cast<double>(total_workers_) * t_end);
}

}  // namespace ncnas::exec
