#include "ncnas/exec/fidelity_ladder.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "ncnas/nn/trainer.hpp"
#include "ncnas/obs/profiler.hpp"

namespace ncnas::exec {
namespace {

// Same canonical float form the context keys use (shared_cache.cpp): the
// fingerprint participates in cache namespaces and config fingerprints, so
// it must be stable across writers and platforms.
std::string canon(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string LadderConfig::fingerprint() const {
  std::string out = "eta";
  out += std::to_string(eta);
  out += ":ws";
  out += warm_start ? '1' : '0';
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    const FidelityConfig& f = rungs[r];
    out += r == 0 ? ":" : ";";
    out += 'e';
    out += std::to_string(f.epochs);
    out += ",sf";
    out += canon(f.subset_fraction);
    out += ",lr";
    out += canon(static_cast<double>(f.learning_rate));
    out += ",bs";
    out += std::to_string(f.batch_size);
    out += ",vf";
    out += canon(f.valid_fraction);
  }
  return out;
}

void LadderConfig::validate() const {
  if (!enabled()) return;
  if (eta < 2) {
    throw std::invalid_argument("LadderConfig: eta must be >= 2");
  }
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    if (rungs[r].epochs == 0) {
      throw std::invalid_argument("LadderConfig: rung epochs must be positive");
    }
    if (r > 0 && rungs[r].epochs < rungs[r - 1].epochs) {
      throw std::invalid_argument(
          "LadderConfig: rung epochs must be non-decreasing (they are cumulative)");
    }
  }
}

LadderConfig make_geometric_ladder(const FidelityConfig& top, std::size_t rungs,
                                   std::size_t eta) {
  if (rungs == 0) throw std::invalid_argument("make_geometric_ladder: rungs must be positive");
  LadderConfig cfg;
  cfg.eta = eta;
  cfg.rungs.resize(rungs, top);
  std::size_t divisor = 1;
  for (std::size_t r = rungs; r-- > 0;) {
    cfg.rungs[r].epochs = std::max<std::size_t>(1, top.epochs / divisor);
    if (divisor <= std::numeric_limits<std::size_t>::max() / std::max<std::size_t>(eta, 2)) {
      divisor *= std::max<std::size_t>(eta, 2);
    }
  }
  cfg.validate();
  return cfg;
}

// One candidate climbing the ladder. `model` holds the inherited weights
// between rungs; it is absent after a rung-cache hit (the hit served the
// reward, not the parameters) and dropped on elimination.
struct FidelityLadder::Candidate {
  std::size_t index = 0;                  ///< batch position (promotion tie-break)
  const space::ArchEncoding* arch = nullptr;
  std::string key;
  std::optional<nn::Graph> model;
  EvalResult res;
  std::size_t trainings = 0;
  bool eliminated = false;  ///< finalized: not promoted, or floored by a timeout
  // Per-rung transients, written by the (possibly pool-parallel) training
  // task and consumed by the serial accounting phase that follows it.
  bool trained_this_rung = false;
  bool warm_this_rung = false;
  bool timed_out_this_rung = false;
};

FidelityLadder::FidelityLadder(const space::SearchSpace& space, const data::Dataset& dataset,
                               LadderConfig config, CostModel cost)
    : space_(&space), dataset_(&dataset), config_(std::move(config)), cost_(cost) {
  if (config_.rungs.empty()) {
    throw std::invalid_argument("FidelityLadder: at least one rung is required");
  }
  config_.validate();
}

void FidelityLadder::set_telemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    train_wall_ms_ = nullptr;
    trainings_ = nullptr;
    training_timeouts_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics();
  train_wall_ms_ = &m.histogram("ncnas_train_wall_ms", obs::exp_buckets(0.25, 2.0, 18));
  trainings_ = &m.counter("ncnas_trainings_total");
  training_timeouts_ = &m.counter("ncnas_training_timeouts_total");
}

float FidelityLadder::reward_floor() const noexcept {
  return dataset_->metric == nn::Metric::kR2 ? -1.0f : 0.0f;
}

std::string FidelityLadder::context_key() const {
  // The top rung's flat recipe plus the full ladder shape. No "|rung=" part:
  // this is the namespace for *final* ladder outcomes (a candidate eliminated
  // at rung 0 finalizes with its rung-0 reward, which must never be read back
  // as a top-rung measurement).
  return eval_context_key(*dataset_, config_.rungs.back(), cost_) + "|ladder=" +
         config_.fingerprint();
}

std::string FidelityLadder::rung_context_key(std::size_t rung) const {
  return eval_context_key(*dataset_, config_.rungs[rung], cost_) + "|ladder=" +
         config_.fingerprint() + "|rung=" + std::to_string(rung) + "/" +
         std::to_string(config_.rungs.size());
}

// Trains (or re-scores) every pending candidate of one rung. Serial phases
// (shared-cache lookups before, inserts and promotion after) bracket a
// pool-parallel training phase; each parallel task touches only its own
// candidate, so results are bit-identical across thread counts.
void FidelityLadder::run_rung(std::vector<Candidate>& cands, std::size_t rung,
                              std::uint64_t seed, LadderRungStats& stats,
                              tensor::ThreadPool* pool) const {
  const FidelityConfig& fid = config_.rungs[rung];
  const std::string rung_ctx = shared_ != nullptr ? rung_context_key(rung) : std::string();
  const float floor = reward_floor();

  // Serial phase 1: rung-cache lookups. A hit serves the rung reward but not
  // the weights — a later promotion trains from scratch at the cumulative
  // epoch count (the warm-vs-scratch parity the tests bound).
  std::vector<std::size_t> work;
  for (Candidate& c : cands) {
    if (c.eliminated) continue;
    ++stats.candidates;
    if (shared_ != nullptr) {
      if (auto hit = shared_->lookup(rung_ctx, c.key, tenant_)) {
        ++stats.rung_hits;
        c.res.reward = hit->reward;
        c.res.params = hit->params;
        c.res.rung = static_cast<std::uint32_t>(rung);
        c.model.reset();
        if (hit->timed_out) {
          // The stored rung measurement was a kill: this candidate floors
          // here for us too (consistently with the tenant that trained it),
          // but as a cache hit it costs no worker time.
          c.res.timed_out = true;
          c.res.reward = floor;
          c.eliminated = true;
        }
        continue;
      }
    }
    c.trained_this_rung = false;
    c.warm_this_rung = false;
    c.timed_out_this_rung = false;
    work.push_back(c.index);
  }

  const auto train_one = [&](std::size_t i) {
    Candidate& c = cands[work[i]];
    const bool warm = config_.warm_start && c.model.has_value();
    std::size_t epochs = fid.epochs;
    if (warm && rung > 0) epochs -= config_.rungs[rung - 1].epochs;

    if (!warm) {
      NCNAS_PROF_SCOPE("ladder/build");
      tensor::Rng rng(seed);
      std::vector<std::size_t> dims;
      dims.reserve(dataset_->input_count());
      for (std::size_t d = 0; d < dataset_->input_count(); ++d) {
        dims.push_back(dataset_->input_dim(d));
      }
      c.model = space::build_model(*space_, *c.arch, dims, head_for(*dataset_), rng);
      // One-row probe materializes lazy weights so param_count is exact.
      std::vector<tensor::Tensor> probe;
      probe.reserve(dataset_->input_count());
      for (const tensor::Tensor& x : dataset_->x_train) probe.push_back(nn::slice_rows(x, 0, 1));
      nn::ForwardCtx ctx{.training = false, .rng = nullptr};
      (void)c.model->forward(probe, ctx);
      c.res.params = c.model->param_count();
    }

    const auto samples = static_cast<std::size_t>(std::max(
        1.0, fid.subset_fraction * static_cast<double>(dataset_->train_rows())));
    const double dur = cost_.duration(c.res.params, samples, epochs, c.key);
    if (cost_.times_out(dur)) {
      // Balsam kills the rung job at the timeout: the worker is occupied for
      // the full window, the candidate floors and cannot be promoted.
      c.res.sim_duration += cost_.timeout_seconds;
      c.res.timed_out = true;
      c.res.reward = floor;
      c.res.rung = static_cast<std::uint32_t>(rung);
      c.model.reset();
      c.timed_out_this_rung = true;
      if (training_timeouts_ != nullptr) training_timeouts_->inc();
      return;
    }

    std::optional<obs::Stopwatch> timer;
    if (train_wall_ms_ != nullptr) timer.emplace();
    if (epochs > 0) {
      if (trainings_ != nullptr) trainings_->inc();
      // Rung r's optimizer stream: split(1 + r) of the agent seed. Rung 0
      // therefore replays the flat evaluator's stream exactly (split(1)),
      // and a scratch training at rung r (rung-hit gap, warm_start=false)
      // draws the same stream a warm rung-r continuation would.
      tensor::Rng train_rng = tensor::Rng(seed).split(1 + rung);
      nn::TrainOptions opts;
      opts.epochs = epochs;
      opts.batch_size = fid.batch_size != 0 ? fid.batch_size : dataset_->batch_size;
      opts.learning_rate = fid.learning_rate;
      opts.loss = dataset_->loss;
      opts.subset_fraction = fid.subset_fraction;
      {
        NCNAS_PROF_SCOPE("ladder/train");
        (void)nn::fit(*c.model, dataset_->x_train, dataset_->y_train, opts, train_rng);
      }
      ++c.trainings;
      c.trained_this_rung = true;
      c.warm_this_rung = warm;
    }

    const auto valid_rows = static_cast<std::size_t>(std::max(
        1.0, fid.valid_fraction * static_cast<double>(dataset_->valid_rows())));
    float metric;
    {
      NCNAS_PROF_SCOPE("ladder/validate");
      if (valid_rows >= dataset_->valid_rows()) {
        metric = nn::evaluate(*c.model, dataset_->x_valid, dataset_->y_valid, dataset_->metric);
      } else {
        std::vector<tensor::Tensor> xv;
        xv.reserve(dataset_->input_count());
        for (const tensor::Tensor& x : dataset_->x_valid) {
          xv.push_back(nn::slice_rows(x, 0, valid_rows));
        }
        metric = nn::evaluate(*c.model, xv, nn::slice_rows(dataset_->y_valid, 0, valid_rows),
                              dataset_->metric);
      }
    }
    c.res.sim_duration += dur;
    c.res.rung = static_cast<std::uint32_t>(rung);
    if (reward_fn_) {
      const RewardInputs inputs{metric, c.res.params, c.res.sim_duration};
      c.res.reward = std::max(reward_fn_(inputs), floor);
    } else {
      c.res.reward = std::max(metric, floor);
    }
    if (timer) {
      const double ms = timer->elapsed_ms();
      c.res.train_wall_ms += ms;
      train_wall_ms_->observe(ms);
    }
  };

  if (pool != nullptr && work.size() > 1) {
    tensor::parallel_for(*pool, work.size(), train_one);
  } else {
    for (std::size_t i = 0; i < work.size(); ++i) train_one(i);
  }

  // Serial phase 2: publish fresh rung measurements (batch order, so insert
  // order is deterministic) and book the rung's accounting.
  for (const std::size_t idx : work) {
    Candidate& c = cands[idx];
    if (c.trained_this_rung) {
      ++stats.trainings;
      if (c.warm_this_rung) ++stats.warm_starts;
    }
    if (c.timed_out_this_rung) {
      ++stats.timeouts;
      c.eliminated = true;
    }
    if (shared_ != nullptr) shared_->insert(rung_ctx, c.key, tenant_, c.res);
  }

  // Promotion: survivors = ceil(alive / eta) by reward, ties broken by the
  // lower batch index (rank-stable). The top rung promotes nobody.
  if (rung + 1 >= config_.rungs.size()) return;
  std::vector<std::size_t> alive;
  for (const Candidate& c : cands) {
    if (!c.eliminated) alive.push_back(c.index);
  }
  if (alive.empty()) return;
  const std::size_t keep = (alive.size() + config_.eta - 1) / config_.eta;
  std::stable_sort(alive.begin(), alive.end(), [&](std::size_t a, std::size_t b) {
    if (cands[a].res.reward != cands[b].res.reward) {
      return cands[a].res.reward > cands[b].res.reward;
    }
    return a < b;
  });
  for (std::size_t i = 0; i < alive.size(); ++i) {
    Candidate& c = cands[alive[i]];
    if (i < keep) {
      ++stats.survivors;
    } else {
      c.eliminated = true;
      c.model.reset();  // eliminated weights are dead — free them eagerly
    }
  }
}

std::vector<LadderOutcome> FidelityLadder::evaluate_batch(
    std::span<const space::ArchEncoding> archs, std::uint64_t seed,
    std::vector<LadderRungStats>* stats, tensor::ThreadPool* pool) const {
  NCNAS_PROF_SCOPE("ladder/batch");
  std::vector<Candidate> cands(archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    cands[i].index = i;
    cands[i].arch = &archs[i];
    cands[i].key = space::arch_key(archs[i]);
  }
  for (std::size_t r = 0; r < config_.rungs.size(); ++r) {
    LadderRungStats rs;
    rs.rung = r;
    run_rung(cands, r, seed, rs, pool);
    if (stats != nullptr && rs.candidates > 0) stats->push_back(rs);
    bool any_alive = false;
    for (const Candidate& c : cands) any_alive = any_alive || !c.eliminated;
    if (!any_alive) break;
  }
  std::vector<LadderOutcome> out(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    out[i].result = cands[i].res;
    // Final outcomes are fresh evaluations from the caller's perspective,
    // even when some rungs were served from the shared store.
    out[i].result.cache_hit = false;
    out[i].result.shared_hit = false;
    out[i].trainings = cands[i].trainings;
  }
  return out;
}

EvalResult FidelityLadder::evaluate(const space::ArchEncoding& arch,
                                    std::uint64_t seed) const {
  // Successive halving with n = 1: ceil(1/eta) = 1 survivor per rung, so the
  // single candidate climbs the whole ladder via warm starts.
  const std::span<const space::ArchEncoding> one(&arch, 1);
  return evaluate_batch(one, seed, nullptr, nullptr)[0].result;
}

}  // namespace ncnas::exec
