#include "ncnas/exec/presets.hpp"

#include <stdexcept>

namespace ncnas::exec {

FidelityConfig default_fidelity(const std::string& dataset_name, double subset_fraction) {
  FidelityConfig fid;
  fid.epochs = 1;
  if (dataset_name == "combo") {
    // 4 scaled epochs x batch 4 over 10 % of 2048 rows ~ the optimization
    // distance of the paper's single epoch over 10 % of 248k rows.
    fid.epochs = 4;
    fid.subset_fraction = subset_fraction < 0 ? 0.10 : subset_fraction;
    fid.learning_rate = 0.01f;
    fid.batch_size = 4;
    fid.valid_fraction = 0.5;   // 256 of 512 validation rows
  } else if (dataset_name == "uno") {
    fid.subset_fraction = subset_fraction < 0 ? 1.0 : subset_fraction;
    fid.learning_rate = 0.02f;
    fid.batch_size = 8;
    fid.valid_fraction = 1.0;
  } else if (dataset_name == "nt3") {
    fid.subset_fraction = subset_fraction < 0 ? 1.0 : subset_fraction;
    fid.learning_rate = 0.01f;
    fid.batch_size = 8;
  } else {
    throw std::invalid_argument("default_fidelity: unknown dataset '" + dataset_name + "'");
  }
  return fid;
}

CostModel default_cost(const std::string& dataset_name) {
  CostModel cost;
  cost.startup_seconds = 25.0;
  cost.timeout_seconds = 600.0;
  cost.jitter_frac = 0.15;
  // Calibrated so a median architecture takes a few simulated minutes and
  // the Fig. 11 fidelity sweep reproduces the paper's timeout crossover:
  // at 10-20 % of Combo's data nearly everything fits in the 600 s timeout,
  // at 30 % large architectures start dying, at 40 % the median one does.
  if (dataset_name == "combo") {
    cost.seconds_per_megaunit = 5.5;
  } else if (dataset_name == "uno") {
    cost.seconds_per_megaunit = 9.0;
  } else if (dataset_name == "nt3") {
    cost.seconds_per_megaunit = 25.0;
  } else {
    throw std::invalid_argument("default_cost: unknown dataset '" + dataset_name + "'");
  }
  return cost;
}

CostModel default_cost_for_space(const std::string& space_name) {
  // Median random-architecture parameter counts (measured): combo-small 36k,
  // combo-large 132k, uno-small 24k, uno-large 80k, nt3-small 10k. The
  // per-space constants put each median task near 3 simulated minutes.
  if (space_name == "combo-large") {
    CostModel cost = default_cost("combo");
    cost.seconds_per_megaunit = 1.6;
    return cost;
  }
  if (space_name == "uno-large") {
    CostModel cost = default_cost("uno");
    cost.seconds_per_megaunit = 3.0;
    return cost;
  }
  const auto dash = space_name.find('-');
  return default_cost(space_name.substr(0, dash));
}

FidelityConfig default_fidelity_for_space(const std::string& space_name,
                                          double subset_fraction) {
  const auto dash = space_name.find('-');
  FidelityConfig fid = default_fidelity(space_name.substr(0, dash), subset_fraction);
  if (space_name == "combo-large") {
    fid.learning_rate = 0.005f;  // deep replicated cells destabilize at 0.01+
  }
  return fid;
}

}  // namespace ncnas::exec
