#include "ncnas/tensor/rng.hpp"

#include <bit>
#include <stdexcept>

namespace ncnas::tensor {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::size_t Rng::categorical(const std::vector<double>& probs) {
  if (probs.empty()) throw std::invalid_argument("Rng::categorical: empty distribution");
  const double u = uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;
}

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& st) {
  for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
  has_cached_normal_ = st.has_cached_normal;
  cached_normal_ = st.cached_normal;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix64 so that
  // neighbouring stream ids yield unrelated sequences.
  std::uint64_t mix = state_[0] ^ (stream * 0xD2B74407B1CE6E93ull + 0x8CB92BA72F3D8DD7ull);
  return Rng(splitmix64(mix));
}

}  // namespace ncnas::tensor
