// NEON micro-kernels for the SIMD tier (aarch64).
//
// Structurally a mirror of simd_avx2.cpp at 128-bit vector width: every C
// element is one fused-multiply-add chain over k ascending (vfmaq_f32 is
// fused on aarch64), started from +0, stored once, no zero-operand skips.
// aarch64 baseline NEON is mandatory, so unlike AVX2 there is no runtime
// CPU check — the table is available whenever the build targets aarch64.

#include "simd_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace ncnas::tensor::simd {

namespace {

constexpr std::size_t kW = kSimdPanelWidth;  // 32 floats = 8 q registers

/// R-row step over one full packed panel: 8R accumulators; R = 3 keeps 24
/// accumulators + panel loads within the 32 q registers.
template <int R>
void panel_step(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                std::size_t i, std::size_t j0) {
  const float* a[R];
  for (int r = 0; r < R; ++r) a[r] = pa + (i + r) * k;
  float32x4_t acc[R][8];
  for (int r = 0; r < R; ++r) {
    for (int v = 0; v < 8; ++v) acc[r][v] = vdupq_n_f32(0.0f);
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * kW;
    for (int r = 0; r < R; ++r) {
      const float32x4_t av = vdupq_n_f32(a[r][kk]);
      for (int v = 0; v < 8; ++v) {
        acc[r][v] = vfmaq_f32(acc[r][v], av, vld1q_f32(brow + 4 * v));
      }
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = pc + (i + r) * n + j0;
    for (int v = 0; v < 8; ++v) vst1q_f32(crow + 4 * v, acc[r][v]);
  }
}

void gemm_panel(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                std::size_t i0, std::size_t i1, std::size_t j0) {
  std::size_t i = i0;
  for (; i + 3 <= i1; i += 3) panel_step<3>(pa, bp, pc, k, n, i, j0);
  for (; i < i1; ++i) panel_step<1>(pa, bp, pc, k, n, i, j0);
}

template <int R>
void tn_step(const float* pa, const float* pb, float* pc, std::size_t m, std::size_t k,
             std::size_t n, std::size_t i, std::size_t j0) {
  float32x4_t acc[R][4];
  for (int r = 0; r < R; ++r) {
    for (int v = 0; v < 4; ++v) acc[r][v] = vdupq_n_f32(0.0f);
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m + i;
    const float* brow = pb + kk * n + j0;
    for (int r = 0; r < R; ++r) {
      const float32x4_t av = vdupq_n_f32(arow[r]);
      for (int v = 0; v < 4; ++v) {
        acc[r][v] = vfmaq_f32(acc[r][v], av, vld1q_f32(brow + 4 * v));
      }
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = pc + (i + r) * n + j0;
    for (int v = 0; v < 4; ++v) vst1q_f32(crow + 4 * v, acc[r][v]);
  }
}

std::size_t tn_full_cols(std::size_t n) { return n & ~std::size_t{15}; }

void gemm_tn_block(const float* pa, const float* pb, float* pc, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t i0, std::size_t i1, std::size_t n_full) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    for (std::size_t j0 = 0; j0 + 16 <= n_full; j0 += 16) tn_step<4>(pa, pb, pc, m, k, n, i, j0);
  }
  for (; i < i1; ++i) {
    for (std::size_t j0 = 0; j0 + 16 <= n_full; j0 += 16) tn_step<1>(pa, pb, pc, m, k, n, i, j0);
  }
}

void axpy_range(float alpha, const float* x, float* y, std::size_t b, std::size_t e) {
  const float32x4_t av = vdupq_n_f32(alpha);
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
  }
  for (; i < e; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

void scale_range(float alpha, float* y, std::size_t b, std::size_t e) {
  const float32x4_t av = vdupq_n_f32(alpha);
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), av));
  for (; i < e; ++i) y[i] *= alpha;
}

void add_bias_rows(float* y, const float* bias, std::size_t n, std::size_t r0, std::size_t r1) {
  for (std::size_t r = r0; r < r1; ++r) {
    float* row = y + r * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      vst1q_f32(row + j, vaddq_f32(vld1q_f32(row + j), vld1q_f32(bias + j)));
    }
    for (; j < n; ++j) row[j] += bias[j];
  }
}

void col_sum_cols(const float* g, float* out, std::size_t m, std::size_t n, std::size_t j0,
                  std::size_t j1) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = g + i * n;
    std::size_t j = j0;
    for (; j + 4 <= j1; j += 4) {
      vst1q_f32(out + j, vaddq_f32(vld1q_f32(out + j), vld1q_f32(row + j)));
    }
    for (; j < j1; ++j) out[j] += row[j];
  }
}

const KernelTable kNeonTable = {
    "neon",     gemm_panel, gemm_tn_block, tn_full_cols,
    axpy_range, scale_range, add_bias_rows, col_sum_cols,
};

}  // namespace

const KernelTable* neon_table() { return &kNeonTable; }

}  // namespace ncnas::tensor::simd

#else  // non-aarch64: no NEON table to offer

namespace ncnas::tensor::simd {
const KernelTable* neon_table() { return nullptr; }
}  // namespace ncnas::tensor::simd

#endif
