#include "ncnas/tensor/ops.hpp"

#include <stdexcept>

namespace ncnas::tensor {

namespace {

void require_rank2(const Tensor& t, const char* what) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(what) + ": expected rank-2 tensor, got shape " +
                                to_string(t.shape()));
  }
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm A");
  require_rank2(b, "gemm B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm: inner dims mismatch " + to_string(a.shape()) + " x " +
                                to_string(b.shape()));
  }
  c.require_shape({m, n}, "gemm C");
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: streams through B and C rows, vectorizes on j.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm_nt A");
  require_rank2(b, "gemm_nt B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("gemm_nt: inner dims mismatch " + to_string(a.shape()) + " x " +
                                to_string(b.shape()) + "^T");
  }
  c.require_shape({m, n}, "gemm_nt C");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm_tn A");
  require_rank2(b, "gemm_tn B");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm_tn: inner dims mismatch " + to_string(a.shape()) + "^T x " +
                                to_string(b.shape()));
  }
  c.require_shape({m, n}, "gemm_tn C");
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a, b, c);
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

void axpy(float alpha, const Tensor& x, Tensor& y) {
  if (x.shape() != y.shape()) {
    throw std::invalid_argument("axpy: shape mismatch " + to_string(x.shape()) + " vs " +
                                to_string(y.shape()));
  }
  float* py = y.data();
  const float* px = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) py[i] += alpha * px[i];
}

void scale_inplace(Tensor& y, float alpha) {
  for (float& v : y.flat()) v *= alpha;
}

void add_row_bias(Tensor& y, const Tensor& bias) {
  require_rank2(y, "add_row_bias y");
  if (bias.rank() != 1 || bias.dim(0) != y.dim(1)) {
    throw std::invalid_argument("add_row_bias: bias shape " + to_string(bias.shape()) +
                                " incompatible with " + to_string(y.shape()));
  }
  const std::size_t m = y.dim(0), n = y.dim(1);
  float* py = y.data();
  const float* pb = bias.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = py + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void accumulate_col_sums(const Tensor& g, Tensor& out) {
  require_rank2(g, "accumulate_col_sums g");
  if (out.rank() != 1 || out.dim(0) != g.dim(1)) {
    throw std::invalid_argument("accumulate_col_sums: out shape " + to_string(out.shape()) +
                                " incompatible with " + to_string(g.shape()));
  }
  const std::size_t m = g.dim(0), n = g.dim(1);
  const float* pg = g.data();
  float* po = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pg + i * n;
    for (std::size_t j = 0; j < n; ++j) po[j] += row[j];
  }
}

float sum(const Tensor& t) {
  double acc = 0.0;
  for (float v : t.flat()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& t) {
  return t.size() == 0 ? 0.0f : sum(t) / static_cast<float>(t.size());
}

float dot(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("dot: shape mismatch");
  }
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

float squared_norm(const Tensor& t) { return dot(t, t); }

}  // namespace ncnas::tensor
