#include "ncnas/tensor/ops.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ncnas/obs/profiler.hpp"
#include "ncnas/tensor/arena.hpp"
#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/thread_pool.hpp"
#include "simd_kernels.hpp"

namespace ncnas::tensor {

namespace {

void require_rank2(const Tensor& t, const char* what) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(what) + ": expected rank-2 tensor, got shape " +
                                to_string(t.shape()));
  }
}

struct GemmDims {
  std::size_t m, k, n;
};

GemmDims check_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm A");
  require_rank2(b, "gemm B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm: inner dims mismatch " + to_string(a.shape()) + " x " +
                                to_string(b.shape()));
  }
  c.require_shape({m, n}, "gemm C");
  return {m, k, n};
}

GemmDims check_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm_nt A");
  require_rank2(b, "gemm_nt B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("gemm_nt: inner dims mismatch " + to_string(a.shape()) + " x " +
                                to_string(b.shape()) + "^T");
  }
  c.require_shape({m, n}, "gemm_nt C");
  return {m, k, n};
}

GemmDims check_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require_rank2(a, "gemm_tn A");
  require_rank2(b, "gemm_tn B");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm_tn: inner dims mismatch " + to_string(a.shape()) + "^T x " +
                                to_string(b.shape()));
  }
  c.require_shape({m, n}, "gemm_tn C");
  return {m, k, n};
}

// --- reference kernels ------------------------------------------------------
//
// The bit-exact oracles. Note there is deliberately no `if (value == 0.0f)
// continue;` fast path anywhere: skipping zero operands never changes finite
// results (0 * x + c == c exactly), but it swallows NaN/Inf in the other
// operand and makes FLOP counts data-dependent. Kernels compute every term.

void gemm_ref_impl(const float* pa, const float* pb, float* pc, const GemmDims& d) {
  // i-k-j loop order: streams through B and C rows, vectorizes on j. The
  // per-element accumulation order — k ascending into a zeroed C — is the
  // contract every blocked kernel reproduces exactly.
  for (std::size_t i = 0; i < d.m; ++i) {
    float* crow = pc + i * d.n;
    std::fill(crow, crow + d.n, 0.0f);
    const float* arow = pa + i * d.k;
    for (std::size_t kk = 0; kk < d.k; ++kk) {
      const float aik = arow[kk];
      const float* brow = pb + kk * d.n;
      for (std::size_t j = 0; j < d.n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_nt_ref_impl(const float* pa, const float* pb, float* pc, const GemmDims& d) {
  // Same i-k-j accumulate-through-memory structure as gemm_ref_impl, reading
  // B^T through its k-stride. This deliberately replaced an earlier
  // dot-product formulation (per-element scalar accumulator): the compiler
  // contracted that loop's reduction into a mix of partial FMA forms that no
  // explicit kernel could reproduce, whereas this form compiles to the same
  // clean per-element k-ascending FMA chain as the packed micro-kernels —
  // which is what lets gemm_nt share the transposed-B pack path bit-for-bit.
  for (std::size_t i = 0; i < d.m; ++i) {
    float* crow = pc + i * d.n;
    std::fill(crow, crow + d.n, 0.0f);
    const float* arow = pa + i * d.k;
    for (std::size_t kk = 0; kk < d.k; ++kk) {
      const float aik = arow[kk];
      for (std::size_t j = 0; j < d.n; ++j) crow[j] += aik * pb[j * d.k + kk];
    }
  }
}

void gemm_tn_ref_impl(const float* pa, const float* pb, float* pc, const GemmDims& d) {
  std::fill(pc, pc + d.m * d.n, 0.0f);
  for (std::size_t kk = 0; kk < d.k; ++kk) {
    const float* arow = pa + kk * d.m;
    const float* brow = pb + kk * d.n;
    for (std::size_t i = 0; i < d.m; ++i) {
      const float aki = arow[i];
      float* crow = pc + i * d.n;
      for (std::size_t j = 0; j < d.n; ++j) crow[j] += aki * brow[j];
    }
  }
}

// --- blocked kernels --------------------------------------------------------
//
// Layout: B is packed into k-major micro-panels of kPanelWidth columns; row
// blocks of C are independent tasks on the kernel pool. Determinism rule
// ("one writer per output element, fixed accumulation order"): a C element
// belongs to exactly one row-block task, and its value is a single register
// accumulation chain over k ascending — the same chain the reference kernel
// performs through memory — so bits match at every thread count.

constexpr std::size_t kPanelWidth = 32;  // NR: columns per packed B panel
constexpr std::size_t kMicroRows = 4;    // MR: C rows per micro-kernel step

// The SIMD micro-kernels consume the same packed panels the scalar ones do.
static_assert(simd::kSimdPanelWidth == kPanelWidth,
              "SIMD kernel panel width must match the pack layout");

/// The SIMD micro-kernel table the given config dispatches to, or nullptr
/// for the scalar micro-kernels. Centralised so the gemm drivers and the
/// elementwise ops apply one policy (config says SIMD, build supports it,
/// CPU supports it, NCNAS_SIMD doesn't veto it).
const simd::KernelTable* simd_table(const KernelConfig& cfg) {
  return cfg.simd_active() ? simd::active_table() : nullptr;
}

/// Grain of the deterministic chunking used by the elementwise helpers.
/// Fixed — never derived from the thread count — so chunk boundaries (and
/// therefore bytes) are identical no matter how many workers execute them.
constexpr std::size_t kElemGrain = 16384;

std::size_t div_up(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Runs fn(index) for each index in [0, n), on the pool when asked.
void run_tasks(bool pooled, std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pooled && n > 1) {
    parallel_for(detail::kernel_pool(), n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

/// Packs B columns [j0, j0+w) into dst, k-major: dst[kk*w + jj] = B[kk][j0+jj].
void pack_b_panel(const float* pb, std::size_t k, std::size_t n, std::size_t j0, std::size_t w,
                  float* dst) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* src = pb + kk * n + j0;
    float* out = dst + kk * w;
    for (std::size_t jj = 0; jj < w; ++jj) out[jj] = src[jj];
  }
}

/// pack_b_panel for a transposed operand: B is stored (n, k) row-major but
/// used as a (k, n) matrix. Produces the identical k-major panel layout —
/// dst[kk*w + jj] = B[j0+jj][kk] — so gemm and gemm_nt share every kernel
/// downstream of packing. Reads stream contiguously along each B row.
void pack_bt_panel(const float* pb, std::size_t k, std::size_t j0, std::size_t w, float* dst) {
  for (std::size_t jj = 0; jj < w; ++jj) {
    const float* src = pb + (j0 + jj) * k;
    for (std::size_t kk = 0; kk < k; ++kk) dst[kk * w + jj] = src[kk];
  }
}

/// R-row step of the gemm micro-kernel over one full-width packed panel.
/// Both R and W are compile-time constants so every loop below fully unrolls
/// and the R*W accumulators stay in vector registers across the whole k loop
/// — one chain per element, k ascending. A runtime row bound here makes the
/// compiler spill every chain to the stack (measured 3-4x SLOWER than the
/// reference); W = 32 (two 512-bit or four 256-bit vectors per row) measured
/// ~2.5x faster than W = 16 on the CI machine.
template <std::size_t R, std::size_t W>
void gemm_micro_step(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                     std::size_t i, std::size_t j0) {
  const float* a[R];
  for (std::size_t r = 0; r < R; ++r) a[r] = pa + (i + r) * k;
  float acc[R][W] = {};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * W;
    float v[R];
    for (std::size_t r = 0; r < R; ++r) v[r] = a[r][kk];
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t jj = 0; jj < W; ++jj) acc[r][jj] += v[r] * brow[jj];
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    std::copy(acc[r], acc[r] + W, pc + (i + r) * n + j0);
  }
}

/// gemm micro-kernel over one full-width packed panel: C rows [i0, i1),
/// columns [j0, j0 + W). The 6-row main body keeps 12 independent vector
/// FMA chains in flight, enough to cover FMA latency on one core; 2-row and
/// 1-row steps mop up the remaining rows.
template <std::size_t W>
void gemm_micro_full(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                     std::size_t i0, std::size_t i1, std::size_t j0) {
  std::size_t i = i0;
  for (; i + 6 <= i1; i += 6) gemm_micro_step<6, W>(pa, bp, pc, k, n, i, j0);
  for (; i + 2 <= i1; i += 2) gemm_micro_step<2, W>(pa, bp, pc, k, n, i, j0);
  for (; i < i1; ++i) gemm_micro_step<1, W>(pa, bp, pc, k, n, i, j0);
}

/// Edge-panel variant for the (runtime) final width w < kPanelWidth.
void gemm_micro_edge(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                     std::size_t i0, std::size_t i1, std::size_t j0, std::size_t w) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float acc[kPanelWidth] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = bp + kk * w;
      for (std::size_t jj = 0; jj < w; ++jj) acc[jj] += aik * brow[jj];
    }
    std::copy(acc, acc + w, pc + i * n + j0);
  }
}

/// Shared blocked driver for gemm and gemm_nt. The only difference between
/// the two ops is how B reaches the k-major packed panels (pack_b_panel vs
/// pack_bt_panel); every kernel downstream of packing — scalar micro-kernels
/// and the SIMD table alike — is identical, which is both the perf story
/// (gemm_nt used to run a strided dot kernel that never vectorized) and the
/// determinism story (one accumulation order to verify, not two).
///
/// The pack buffer comes from the per-thread arena: steady-state calls do
/// zero heap allocations (the old std::vector alloc'd k*n floats per call).
/// Pool workers write disjoint panel ranges of it; alloc/rewind stay on the
/// calling thread as the arena contract requires.
void gemm_panels_blocked(const float* pa, const float* pb, float* pc, const GemmDims& d,
                         const KernelConfig& cfg, bool b_transposed) {
  const std::size_t npanels = div_up(d.n, kPanelWidth);
  // Panel p covers columns [p*W, p*W + w); packing it at offset j0*k keeps
  // the buffer exactly k*n floats with no holes.
  detail::ArenaScope scratch;
  float* packed = scratch.alloc(d.k * d.n);
  run_tasks(cfg.pooled(), npanels, [&](std::size_t p) {
    const std::size_t j0 = p * kPanelWidth;
    const std::size_t w = std::min(kPanelWidth, d.n - j0);
    float* dst = packed + j0 * d.k;
    if (b_transposed) {
      pack_bt_panel(pb, d.k, j0, w, dst);
    } else {
      pack_b_panel(pb, d.k, d.n, j0, w, dst);
    }
  });

  const simd::KernelTable* tbl = simd_table(cfg);
  const std::size_t panels_per_pass = std::max<std::size_t>(1, cfg.block_cols / kPanelWidth);
  const std::size_t nblocks = div_up(d.m, cfg.block_rows);
  run_tasks(cfg.pooled(), nblocks, [&](std::size_t blk) {
    const std::size_t i0 = blk * cfg.block_rows;
    const std::size_t i1 = std::min(i0 + cfg.block_rows, d.m);
    for (std::size_t pc0 = 0; pc0 < npanels; pc0 += panels_per_pass) {
      const std::size_t pc1 = std::min(pc0 + panels_per_pass, npanels);
      for (std::size_t p = pc0; p < pc1; ++p) {
        const std::size_t j0 = p * kPanelWidth;
        const std::size_t w = std::min(kPanelWidth, d.n - j0);
        const float* bp = packed + j0 * d.k;
        if (w == kPanelWidth) {
          // SIMD handles only full-width panels; bit-safe to mix with the
          // scalar edge path because equality is a per-element property.
          if (tbl != nullptr) {
            tbl->gemm_panel(pa, bp, pc, d.k, d.n, i0, i1, j0);
          } else {
            gemm_micro_full<kPanelWidth>(pa, bp, pc, d.k, d.n, i0, i1, j0);
          }
        } else {
          gemm_micro_edge(pa, bp, pc, d.k, d.n, i0, i1, j0, w);
        }
      }
    }
  });
}

/// gemm_tn micro-kernels: C rows [i, i+R) x columns [j0, j0+W). A columns
/// i..i+R are adjacent floats within each A row, B rows are contiguous —
/// no packing needed. The row count is a compile-time constant and each row
/// gets its own named accumulator array: a runtime-bound row loop here makes
/// the compiler spill every chain to the stack (measured 3-4x SLOWER than
/// the reference), while the unrolled form holds all chains in registers.
template <std::size_t W>
void gemm_tn_micro_r4(const float* pa, const float* pb, float* pc, const GemmDims& d,
                      std::size_t i, std::size_t j0) {
  float acc0[W] = {}, acc1[W] = {}, acc2[W] = {}, acc3[W] = {};
  for (std::size_t kk = 0; kk < d.k; ++kk) {
    const float* arow = pa + kk * d.m + i;
    const float* brow = pb + kk * d.n + j0;
    const float v0 = arow[0], v1 = arow[1], v2 = arow[2], v3 = arow[3];
    for (std::size_t jj = 0; jj < W; ++jj) {
      const float bv = brow[jj];
      acc0[jj] += v0 * bv;
      acc1[jj] += v1 * bv;
      acc2[jj] += v2 * bv;
      acc3[jj] += v3 * bv;
    }
  }
  std::copy(acc0, acc0 + W, pc + (i + 0) * d.n + j0);
  std::copy(acc1, acc1 + W, pc + (i + 1) * d.n + j0);
  std::copy(acc2, acc2 + W, pc + (i + 2) * d.n + j0);
  std::copy(acc3, acc3 + W, pc + (i + 3) * d.n + j0);
}

/// Single-row variant with runtime width for all edges (rows % 4, n % W).
void gemm_tn_micro_r1(const float* pa, const float* pb, float* pc, const GemmDims& d,
                      std::size_t i, std::size_t j0, std::size_t w) {
  float acc[kPanelWidth] = {};
  for (std::size_t kk = 0; kk < d.k; ++kk) {
    const float av = pa[kk * d.m + i];
    const float* brow = pb + kk * d.n + j0;
    for (std::size_t jj = 0; jj < w; ++jj) acc[jj] += av * brow[jj];
  }
  std::copy(acc, acc + w, pc + i * d.n + j0);
}

void gemm_tn_blocked(const float* pa, const float* pb, float* pc, const GemmDims& d,
                     const KernelConfig& cfg) {
  const simd::KernelTable* tbl = simd_table(cfg);
  const std::size_t n_full = tbl != nullptr ? tbl->gemm_tn_full_cols(d.n) : 0;
  const std::size_t nblocks = div_up(d.m, cfg.block_rows);
  run_tasks(cfg.pooled(), nblocks, [&](std::size_t blk) {
    const std::size_t i0 = blk * cfg.block_rows;
    const std::size_t i1 = std::min(i0 + cfg.block_rows, d.m);
    if (tbl != nullptr && n_full > 0) {
      tbl->gemm_tn_block(pa, pb, pc, d.m, d.k, d.n, i0, i1, n_full);
      // Leftover columns [n_full, n) — fewer than one vector chunk — go to
      // the scalar edge kernel, one sub-width pass per row.
      for (std::size_t i = i0; n_full < d.n && i < i1; ++i) {
        gemm_tn_micro_r1(pa, pb, pc, d, i, n_full, d.n - n_full);
      }
      return;
    }
    std::size_t i = i0;
    for (; i + kMicroRows <= i1; i += kMicroRows) {
      std::size_t j0 = 0;
      for (; j0 + kPanelWidth <= d.n; j0 += kPanelWidth) {
        gemm_tn_micro_r4<kPanelWidth>(pa, pb, pc, d, i, j0);
      }
      if (j0 < d.n) {
        for (std::size_t r = 0; r < kMicroRows; ++r) {
          gemm_tn_micro_r1(pa, pb, pc, d, i + r, j0, d.n - j0);
        }
      }
    }
    for (; i < i1; ++i) {
      for (std::size_t j0 = 0; j0 < d.n; j0 += kPanelWidth) {
        gemm_tn_micro_r1(pa, pb, pc, d, i, j0, std::min(kPanelWidth, d.n - j0));
      }
    }
  });
}

/// Which tier a gemm of these dims runs under cfg. One rule for all three
/// variants: below min_blocked_flops the blocking/packing overhead loses to
/// the plain reference loop (this is what fixes the small-size gemm_nt
/// regression — tiny matmuls now take the reference path outright), above
/// it the blocked drivers run, upgraded to the SIMD table when eligible.
GemmPath plan_path(const GemmDims& d, const KernelConfig& cfg) {
  if (!cfg.blocked() || d.m * d.k * d.n < cfg.min_blocked_flops) return GemmPath::kReference;
  return cfg.simd_active() ? GemmPath::kSimd : GemmPath::kBlocked;
}

// 2*m*k*n multiply-adds; bytes = read A, read B, write C (float32).
double gemm_flops(const GemmDims& d) {
  return 2.0 * static_cast<double>(d.m) * static_cast<double>(d.k) * static_cast<double>(d.n);
}

double gemm_bytes(const GemmDims& d) {
  return 4.0 * (static_cast<double>(d.m) * static_cast<double>(d.k) +
                static_cast<double>(d.k) * static_cast<double>(d.n) +
                static_cast<double>(d.m) * static_cast<double>(d.n));
}

}  // namespace

GemmPath planned_gemm_path(std::size_t m, std::size_t k, std::size_t n) {
  return plan_path({m, k, n}, kernel_config());
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm(a, b, c);
  obs::ProfileScope prof("gemm");
  prof.add_work(gemm_flops(d), gemm_bytes(d));
  const KernelConfig cfg = kernel_config();
  if (plan_path(d, cfg) != GemmPath::kReference) {
    gemm_panels_blocked(a.data(), b.data(), c.data(), d, cfg, /*b_transposed=*/false);
  } else {
    gemm_ref_impl(a.data(), b.data(), c.data(), d);
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm_nt(a, b, c);
  obs::ProfileScope prof("gemm_nt");
  prof.add_work(gemm_flops(d), gemm_bytes(d));
  const KernelConfig cfg = kernel_config();
  if (plan_path(d, cfg) != GemmPath::kReference) {
    gemm_panels_blocked(a.data(), b.data(), c.data(), d, cfg, /*b_transposed=*/true);
  } else {
    gemm_nt_ref_impl(a.data(), b.data(), c.data(), d);
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm_tn(a, b, c);
  obs::ProfileScope prof("gemm_tn");
  prof.add_work(gemm_flops(d), gemm_bytes(d));
  const KernelConfig cfg = kernel_config();
  if (plan_path(d, cfg) != GemmPath::kReference) {
    gemm_tn_blocked(a.data(), b.data(), c.data(), d, cfg);
  } else {
    gemm_tn_ref_impl(a.data(), b.data(), c.data(), d);
  }
}

void gemm_ref(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm(a, b, c);
  gemm_ref_impl(a.data(), b.data(), c.data(), d);
}

void gemm_nt_ref(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm_nt(a, b, c);
  gemm_nt_ref_impl(a.data(), b.data(), c.data(), d);
}

void gemm_tn_ref(const Tensor& a, const Tensor& b, Tensor& c) {
  const GemmDims d = check_gemm_tn(a, b, c);
  gemm_tn_ref_impl(a.data(), b.data(), c.data(), d);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a, b, c);
  return c;
}

void parallel_elems(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const KernelConfig cfg = kernel_config();
  const std::size_t chunks = div_up(n, kElemGrain);
  if (!cfg.pooled() || n < cfg.min_parallel_elems || chunks < 2) {
    fn(0, n);
    return;
  }
  parallel_for(detail::kernel_pool(), chunks, [&](std::size_t c) {
    fn(c * kElemGrain, std::min(n, (c + 1) * kElemGrain));
  });
}

void parallel_rows(std::size_t rows, std::size_t cols,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
  if (rows == 0) return;
  const KernelConfig cfg = kernel_config();
  const std::size_t grain = std::max<std::size_t>(1, kElemGrain / std::max<std::size_t>(1, cols));
  const std::size_t chunks = div_up(rows, grain);
  if (!cfg.pooled() || rows * std::max<std::size_t>(1, cols) < cfg.min_parallel_elems ||
      chunks < 2) {
    fn(0, rows);
    return;
  }
  parallel_for(detail::kernel_pool(), chunks, [&](std::size_t c) {
    fn(c * grain, std::min(rows, (c + 1) * grain));
  });
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

void axpy(float alpha, const Tensor& x, Tensor& y) {
  if (x.shape() != y.shape()) {
    throw std::invalid_argument("axpy: shape mismatch " + to_string(x.shape()) + " vs " +
                                to_string(y.shape()));
  }
  obs::ProfileScope prof("axpy");
  prof.add_work(2.0 * static_cast<double>(y.size()), 12.0 * static_cast<double>(y.size()));
  float* py = y.data();
  const float* px = x.data();
  const simd::KernelTable* tbl = simd_table(kernel_config());
  parallel_elems(y.size(), [&](std::size_t b, std::size_t e) {
    if (tbl != nullptr) {
      tbl->axpy_range(alpha, px, py, b, e);
    } else {
      for (std::size_t i = b; i < e; ++i) py[i] += alpha * px[i];
    }
  });
}

void scale_inplace(Tensor& y, float alpha) {
  obs::ProfileScope prof("scale_inplace");
  prof.add_work(static_cast<double>(y.size()), 8.0 * static_cast<double>(y.size()));
  float* py = y.data();
  const simd::KernelTable* tbl = simd_table(kernel_config());
  parallel_elems(y.size(), [&](std::size_t b, std::size_t e) {
    if (tbl != nullptr) {
      tbl->scale_range(alpha, py, b, e);
    } else {
      for (std::size_t i = b; i < e; ++i) py[i] *= alpha;
    }
  });
}

void add_row_bias(Tensor& y, const Tensor& bias) {
  require_rank2(y, "add_row_bias y");
  if (bias.rank() != 1 || bias.dim(0) != y.dim(1)) {
    throw std::invalid_argument("add_row_bias: bias shape " + to_string(bias.shape()) +
                                " incompatible with " + to_string(y.shape()));
  }
  const std::size_t m = y.dim(0), n = y.dim(1);
  obs::ProfileScope prof("add_row_bias");
  prof.add_work(static_cast<double>(m) * static_cast<double>(n),
                4.0 * (2.0 * static_cast<double>(m) * static_cast<double>(n) +
                       static_cast<double>(n)));
  float* py = y.data();
  const float* pb = bias.data();
  const simd::KernelTable* tbl = simd_table(kernel_config());
  parallel_rows(m, n, [&](std::size_t rb, std::size_t re) {
    if (tbl != nullptr) {
      tbl->add_bias_rows(py, pb, n, rb, re);
    } else {
      for (std::size_t i = rb; i < re; ++i) {
        float* row = py + i * n;
        for (std::size_t j = 0; j < n; ++j) row[j] += pb[j];
      }
    }
  });
}

void accumulate_col_sums(const Tensor& g, Tensor& out) {
  require_rank2(g, "accumulate_col_sums g");
  if (out.rank() != 1 || out.dim(0) != g.dim(1)) {
    throw std::invalid_argument("accumulate_col_sums: out shape " + to_string(out.shape()) +
                                " incompatible with " + to_string(g.shape()));
  }
  const std::size_t m = g.dim(0), n = g.dim(1);
  obs::ProfileScope prof("accumulate_col_sums");
  prof.add_work(static_cast<double>(m) * static_cast<double>(n),
                4.0 * (static_cast<double>(m) * static_cast<double>(n) +
                       2.0 * static_cast<double>(n)));
  const float* pg = g.data();
  float* po = out.data();
  const simd::KernelTable* tbl = simd_table(kernel_config());
  // Parallel over column ranges: each out[j] has a single writer, and its
  // accumulation stays row-ascending — the serial order — per column.
  parallel_rows(n, m, [&](std::size_t jb, std::size_t je) {
    if (tbl != nullptr) {
      tbl->col_sum_cols(pg, po, m, n, jb, je);
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        const float* row = pg + i * n;
        for (std::size_t j = jb; j < je; ++j) po[j] += row[j];
      }
    }
  });
}

float sum(const Tensor& t) {
  double acc = 0.0;
  for (float v : t.flat()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& t) {
  return t.size() == 0 ? 0.0f : sum(t) / static_cast<float>(t.size());
}

float dot(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("dot: shape mismatch");
  }
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

float squared_norm(const Tensor& t) { return dot(t, t); }

}  // namespace ncnas::tensor
