#include "ncnas/tensor/kernel_config.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "ncnas/tensor/thread_pool.hpp"
#include "simd_kernels.hpp"

namespace ncnas::tensor {

namespace {

// Compile-time half of the SIMD eligibility gate. The scalar blocked
// micro-kernels only compile to per-element FMA chains — the chains the
// explicit SIMD kernels issue — when this library is built optimized with
// FMA contraction available (x86 needs -mfma / -march=native; aarch64 has
// fused multiply-add in baseline NEON). In any other build (e.g. -O0, or a
// generic x86 target without FMA) the scalar tiers use separate multiply and
// add roundings, and dispatching to SIMD would break bit-identity — so the
// tier reports unavailable and everything falls back to blocked kernels.
#if defined(__OPTIMIZE__) && (defined(__FMA__) || defined(__aarch64__))
constexpr bool kSimdContractCompatible = true;
#else
constexpr bool kSimdContractCompatible = false;
#endif

/// NCNAS_SIMD environment kill switch, read once: "off"/"0" disables the
/// SIMD tier process-wide regardless of any KernelConfig. Any other value
/// (including "on") leaves dispatch to the config policy.
bool simd_env_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("NCNAS_SIMD");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

// Each field is its own atomic so concurrent *reads* from kernel call sites
// are race-free without a lock on the hot path. Writes are documented as
// phase boundaries only (see kernel_config.hpp), so field-level tearing
// across a concurrent read cannot happen in a correct program.
std::atomic<std::size_t> g_threads{0};
std::atomic<std::size_t> g_block_rows{64};
std::atomic<std::size_t> g_block_cols{256};
std::atomic<std::size_t> g_min_blocked_flops{16 * 1024};
std::atomic<std::size_t> g_min_parallel_elems{32 * 1024};
std::atomic<int> g_simd{static_cast<int>(SimdMode::kAuto)};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // sized g_pool_threads, lazily built
std::size_t g_pool_threads = 0;

}  // namespace

bool KernelConfig::simd_available() noexcept {
  return kSimdContractCompatible && simd_env_enabled() && simd::active_table() != nullptr;
}

const char* KernelConfig::simd_isa() noexcept {
  return simd_available() ? simd::active_table()->isa : "";
}

bool KernelConfig::simd_active() const noexcept {
  return blocked() && simd != SimdMode::kOff && simd_available();
}

KernelConfig KernelConfig::parallel(std::size_t threads) {
  KernelConfig cfg;
  cfg.threads =
      threads != 0 ? threads
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return cfg;
}

void set_kernel_config(const KernelConfig& cfg) {
  if (cfg.block_rows == 0 || cfg.block_cols == 0) {
    throw std::invalid_argument("set_kernel_config: block sizes must be positive");
  }
  g_threads.store(cfg.threads);
  g_block_rows.store(cfg.block_rows);
  g_block_cols.store(cfg.block_cols);
  g_min_blocked_flops.store(cfg.min_blocked_flops);
  g_min_parallel_elems.store(cfg.min_parallel_elems);
  g_simd.store(static_cast<int>(cfg.simd));
}

KernelConfig kernel_config() {
  KernelConfig cfg;
  cfg.threads = g_threads.load();
  cfg.block_rows = g_block_rows.load();
  cfg.block_cols = g_block_cols.load();
  cfg.min_blocked_flops = g_min_blocked_flops.load();
  cfg.min_parallel_elems = g_min_parallel_elems.load();
  cfg.simd = static_cast<SimdMode>(g_simd.load());
  return cfg;
}

ThreadPool& detail::kernel_pool() {
  const std::size_t want = std::max<std::size_t>(2, g_threads.load());
  std::scoped_lock lock(g_pool_mutex);
  if (!g_pool || g_pool_threads != want) {
    g_pool.reset();  // join the old workers before spawning replacements
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_threads = want;
  }
  return *g_pool;
}

}  // namespace ncnas::tensor
