#include "ncnas/tensor/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace ncnas::tensor {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task traps exceptions into the future
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || pool.thread_count() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, pool.thread_count() * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool.submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace ncnas::tensor
