// Internal interface between the blocked kernel drivers (ops.cpp) and the
// ISA-specific SIMD micro-kernel translation units.
//
// The contract mirrors the scalar micro-kernels exactly: every C element is
// one fused-multiply-add accumulation chain over k ascending, started from
// zero, stored once. The SIMD kernels only ever handle the regular interior
// of a problem — full kPanelWidth-wide packed panels, full vector-width
// column chunks — and the drivers route every edge (ragged panel widths,
// leftover columns) to the scalar micro-kernels in ops.cpp. Since bit
// equality is a per-element property, mixing producers per region is safe,
// and the SIMD code never needs masked loads.
//
// Why the table can be used at all: ops.cpp is compiled with -ffp-contract
// and (in release builds) FMA available, so its scalar accumulation loops
// compile to per-element FMA chains — the same single-rounding operations
// _mm256_fmadd_ps / vfmaq_f32 perform. KernelConfig::simd_available() gates
// dispatch on exactly that build condition; see kernel_config.cpp.
#pragma once

#include <cstddef>

namespace ncnas::tensor::simd {

/// Must equal ops.cpp's kPanelWidth (static_assert'd at registration).
inline constexpr std::size_t kSimdPanelWidth = 32;

struct KernelTable {
  const char* isa;  // "avx2" or "neon"

  /// gemm/gemm_nt micro-kernel over one full kSimdPanelWidth-wide packed
  /// k-major B panel `bp`: writes C rows [i0, i1), columns [j0, j0+W).
  void (*gemm_panel)(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                     std::size_t i0, std::size_t i1, std::size_t j0);

  /// gemm_tn micro-kernel: C rows [i0, i1) for the leading n_full columns,
  /// where n_full is a multiple of the vector width the table was built for
  /// (columns [n_full, n) are the caller's problem). A is (k, m), B is (k, n).
  void (*gemm_tn_block)(const float* pa, const float* pb, float* pc, std::size_t m, std::size_t k,
                        std::size_t n, std::size_t i0, std::size_t i1, std::size_t n_full);

  /// Column count gemm_tn_block can cover: n rounded down to vector width.
  std::size_t (*gemm_tn_full_cols)(std::size_t n);

  /// y[i] += alpha * x[i] for i in [b, e).
  void (*axpy_range)(float alpha, const float* x, float* y, std::size_t b, std::size_t e);
  /// y[i] *= alpha for i in [b, e).
  void (*scale_range)(float alpha, float* y, std::size_t b, std::size_t e);
  /// row-major y(m, n): y[i][j] += bias[j] for rows [r0, r1).
  void (*add_bias_rows)(float* y, const float* bias, std::size_t n, std::size_t r0, std::size_t r1);
  /// out[j] += sum_i g[i][j] for columns [j0, j1), rows ascending (g is m x n).
  void (*col_sum_cols)(const float* g, float* out, std::size_t m, std::size_t n, std::size_t j0,
                       std::size_t j1);
};

/// The AVX2+FMA table, or nullptr when not built for x86-64 or the CPU lacks
/// AVX2/FMA (checked once at runtime).
const KernelTable* avx2_table();

/// The NEON table, or nullptr when not built for aarch64.
const KernelTable* neon_table();

/// The table for this machine (cached), or nullptr. This is raw capability —
/// KernelConfig::simd_available() layers the build-flag gate and the
/// NCNAS_SIMD environment kill switch on top.
const KernelTable* active_table();

}  // namespace ncnas::tensor::simd
