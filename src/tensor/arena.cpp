#include "ncnas/tensor/arena.hpp"

#include <algorithm>
#include <new>

#include "ncnas/obs/profiler.hpp"

namespace ncnas::tensor::detail {

namespace {

// First chunk sized for a typical pack panel set (256 KiB = 64k floats);
// later chunks double so any workload settles after O(log) growths.
constexpr std::size_t kMinChunkFloats = 64 * 1024;
constexpr std::size_t kAlignFloats = 16;  // 64-byte alignment in floats

std::size_t align_up(std::size_t n) {
  return (n + kAlignFloats - 1) & ~(kAlignFloats - 1);
}

}  // namespace

void Arena::AlignedDelete::operator()(float* p) const noexcept {
  ::operator delete[](p, std::align_val_t{64});
}

Arena& Arena::local() {
  thread_local Arena arena;
  return arena;
}

float* Arena::alloc(std::size_t n) {
  const std::size_t want = std::max<std::size_t>(1, align_up(n));
  // Advance through existing chunks before growing a new one.
  while (chunk_ < chunks_.size()) {
    Chunk& c = chunks_[chunk_];
    if (used_ + want <= c.size) {
      float* out = c.data.get() + used_;
      used_ += want;
      return out;
    }
    ++chunk_;
    used_ = 0;
  }
  std::size_t grow = std::max(want, kMinChunkFloats);
  if (!chunks_.empty()) grow = std::max(grow, chunks_.back().size * 2);
  Chunk c;
  c.data.reset(static_cast<float*>(::operator new[](grow * sizeof(float), std::align_val_t{64})));
  c.size = grow;
  obs::profile_alloc(grow * sizeof(float));
  chunks_.push_back(std::move(c));
  chunk_ = chunks_.size() - 1;
  used_ = want;
  return chunks_.back().data.get();
}

std::size_t Arena::capacity_floats() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace ncnas::tensor::detail
