// Runtime SIMD dispatch: picks the micro-kernel table this machine can run.
//
// Compiled with the base flags only (no -mavx2), so it is safe to execute on
// any CPU; the ISA-specific tables live in their own TUs and are only
// dereferenced after the capability check below says they can run.

#include "simd_kernels.hpp"

namespace ncnas::tensor::simd {

namespace {

const KernelTable* detect() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX2 and FMA are separate CPUID feature bits; the table uses both.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return avx2_table();
  }
  return nullptr;
#elif defined(__aarch64__)
  return neon_table();
#else
  return nullptr;
#endif
}

}  // namespace

const KernelTable* active_table() {
  static const KernelTable* table = detect();
  return table;
}

}  // namespace ncnas::tensor::simd
