// AVX2+FMA micro-kernels for the SIMD tier (x86-64).
//
// This translation unit is compiled with -mavx2 -mfma appended to the base
// flags (see src/tensor/CMakeLists.txt), so it may execute AVX2 instructions
// unconditionally — the dispatch layer (simd_dispatch.cpp, compiled with
// base flags only) verifies CPU support before ever handing out this table.
//
// Determinism contract (same as the scalar micro-kernels in ops.cpp): every
// C element is a single accumulation chain of fused multiply-adds over k
// ascending, started from +0, stored exactly once. _mm256_fmadd_ps performs
// the same single-rounding operation per lane that the contracted scalar
// loops perform per element, so bytes match the blocked tier and, through
// it, the reference kernels. Scalar tails here use std::fmaf explicitly for
// the same reason. No zero-operand skips anywhere: 0 * NaN must stay NaN.

#include "simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

namespace ncnas::tensor::simd {

namespace {

constexpr std::size_t kW = kSimdPanelWidth;  // 32 floats = 4 ymm registers

/// R-row step over one full packed panel: 4R accumulator vectors stay live
/// across the whole k loop. R = 3 keeps 12 accumulators + broadcasts within
/// the 16 ymm registers; a single-row variant mops up the tail.
template <int R>
void panel_step(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                std::size_t i, std::size_t j0) {
  const float* a[R];
  for (int r = 0; r < R; ++r) a[r] = pa + (i + r) * k;
  __m256 acc[R][4];
  for (int r = 0; r < R; ++r) {
    for (int v = 0; v < 4; ++v) acc[r][v] = _mm256_setzero_ps();
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * kW;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    const __m256 b2 = _mm256_loadu_ps(brow + 16);
    const __m256 b3 = _mm256_loadu_ps(brow + 24);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_set1_ps(a[r][kk]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
      acc[r][2] = _mm256_fmadd_ps(av, b2, acc[r][2]);
      acc[r][3] = _mm256_fmadd_ps(av, b3, acc[r][3]);
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = pc + (i + r) * n + j0;
    for (int v = 0; v < 4; ++v) _mm256_storeu_ps(crow + 8 * v, acc[r][v]);
  }
}

void gemm_panel(const float* pa, const float* bp, float* pc, std::size_t k, std::size_t n,
                std::size_t i0, std::size_t i1, std::size_t j0) {
  std::size_t i = i0;
  for (; i + 3 <= i1; i += 3) panel_step<3>(pa, bp, pc, k, n, i, j0);
  for (; i < i1; ++i) panel_step<1>(pa, bp, pc, k, n, i, j0);
}

/// gemm_tn R-row step over a 16-column chunk: A columns i..i+R are adjacent
/// floats within each A row (A is k x m), B rows are contiguous.
template <int R>
void tn_step(const float* pa, const float* pb, float* pc, std::size_t m, std::size_t k,
             std::size_t n, std::size_t i, std::size_t j0) {
  __m256 acc[R][2];
  for (int r = 0; r < R; ++r) {
    for (int v = 0; v < 2; ++v) acc[r][v] = _mm256_setzero_ps();
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m + i;
    const float* brow = pb + kk * n + j0;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = pc + (i + r) * n + j0;
    _mm256_storeu_ps(crow, acc[r][0]);
    _mm256_storeu_ps(crow + 8, acc[r][1]);
  }
}

std::size_t tn_full_cols(std::size_t n) { return n & ~std::size_t{15}; }

void gemm_tn_block(const float* pa, const float* pb, float* pc, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t i0, std::size_t i1, std::size_t n_full) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    for (std::size_t j0 = 0; j0 + 16 <= n_full; j0 += 16) tn_step<4>(pa, pb, pc, m, k, n, i, j0);
  }
  for (; i < i1; ++i) {
    for (std::size_t j0 = 0; j0 + 16 <= n_full; j0 += 16) tn_step<1>(pa, pb, pc, m, k, n, i, j0);
  }
}

void axpy_range(float alpha, const float* x, float* y, std::size_t b, std::size_t e) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m256 yv = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), yv));
  }
  for (; i < e; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

void scale_range(float alpha, float* y, std::size_t b, std::size_t e) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), av));
  for (; i < e; ++i) y[i] *= alpha;
}

void add_bias_rows(float* y, const float* bias, std::size_t n, std::size_t r0, std::size_t r1) {
  for (std::size_t r = r0; r < r1; ++r) {
    float* row = y + r * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(row + j), _mm256_loadu_ps(bias + j)));
    }
    for (; j < n; ++j) row[j] += bias[j];
  }
}

void col_sum_cols(const float* g, float* out, std::size_t m, std::size_t n, std::size_t j0,
                  std::size_t j1) {
  // Row-ascending accumulation per column, exactly like the serial loop —
  // vectorizing across columns never reorders any single column's chain.
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = g + i * n;
    std::size_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), _mm256_loadu_ps(row + j)));
    }
    for (; j < j1; ++j) out[j] += row[j];
  }
}

const KernelTable kAvx2Table = {
    "avx2",     gemm_panel, gemm_tn_block, tn_full_cols,
    axpy_range, scale_range, add_bias_rows, col_sum_cols,
};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace ncnas::tensor::simd

#else  // non-x86: no AVX2 table to offer

namespace ncnas::tensor::simd {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace ncnas::tensor::simd

#endif
