#include "ncnas/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ncnas/obs/profiler.hpp"

namespace ncnas::tensor {

std::size_t numel(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

// The two value-initializing constructors are the hot-path buffer
// allocations (every op output goes through them); adopting constructors
// reuse a caller-built buffer and are deliberately not counted.
Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(numel(shape_), 0.0f) {
  if (!data_.empty()) obs::profile_alloc(data_.size() * sizeof(float));
}

Tensor::Tensor(Shape shape, float value) : shape_(std::move(shape)), data_(numel(shape_), value) {
  if (!data_.empty()) obs::profile_alloc(data_.size() * sizeof(float));
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + to_string(shape_));
  }
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::of2d(std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  std::vector<float> data;
  data.reserve(r * c);
  for (const auto& row : rows) {
    if (row.size() != c) throw std::invalid_argument("Tensor::of2d: ragged rows");
    data.insert(data.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(data));
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: cannot view " + to_string(shape_) + " as " +
                                to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::ranges::fill(data_, value); }

void Tensor::reset(Shape shape) {
  const std::size_t n = numel(shape);
  if (n > data_.capacity()) {
    // Growing: drop the old elements first so resize doesn't copy them into
    // the new buffer, and count the fresh allocation like the constructors.
    data_.clear();
    data_.resize(n);
    if (n != 0) obs::profile_alloc(n * sizeof(float));
  } else {
    data_.resize(n);
  }
  shape_ = std::move(shape);
}

void Tensor::require_shape(const Shape& expected, const char* what) const {
  if (shape_ != expected) {
    throw std::invalid_argument(std::string(what) + ": expected shape " + to_string(expected) +
                                ", got " + to_string(shape_));
  }
}

bool operator==(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::equal(a.flat().begin(), a.flat().end(), b.flat().begin());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch " + to_string(a.shape()) + " vs " +
                                to_string(b.shape()));
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace ncnas::tensor
