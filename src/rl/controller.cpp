#include "ncnas/rl/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ncnas/nn/init.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::rl {

using nn::LstmState;
using tensor::Tensor;

namespace {

/// Row-wise softmax with entries at column >= arity masked out.
void masked_softmax_row(const float* logits, std::size_t arity, std::size_t width, float* probs) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::size_t j = 0; j < arity; ++j) mx = std::max(mx, logits[j]);
  float denom = 0.0f;
  for (std::size_t j = 0; j < arity; ++j) {
    probs[j] = std::exp(logits[j] - mx);
    denom += probs[j];
  }
  for (std::size_t j = 0; j < arity; ++j) probs[j] /= denom;
  for (std::size_t j = arity; j < width; ++j) probs[j] = 0.0f;
}

nn::LstmCell make_cell(std::size_t embed, std::size_t hidden, std::uint64_t seed) {
  tensor::Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  return {embed, hidden, rng};
}

}  // namespace

Controller::Controller(std::vector<std::size_t> arities, std::uint64_t seed, std::size_t hidden,
                       std::size_t embed)
    : arities_(std::move(arities)),
      hidden_(hidden),
      embed_dim_(embed),
      max_arity_(arities_.empty() ? 0
                                  : *std::max_element(arities_.begin(), arities_.end())),
      lstm_(make_cell(embed, hidden, seed)),
      adam_(0.001f) {
  if (arities_.empty()) throw std::invalid_argument("Controller: empty arity list");
  for (std::size_t a : arities_) {
    if (a == 0) throw std::invalid_argument("Controller: zero-arity decision");
  }
  tensor::Rng rng(seed);
  Tensor emb({max_arity_ + 1, embed_dim_});
  nn::scaled_normal(emb, 0.1f, rng);
  embed_ = std::make_shared<nn::Parameter>("ctrl.embed", std::move(emb));
  Tensor wpi({hidden_, max_arity_});
  nn::glorot_uniform(wpi, hidden_, max_arity_, rng);
  wpi_ = std::make_shared<nn::Parameter>("ctrl.wpi", std::move(wpi));
  bpi_ = std::make_shared<nn::Parameter>("ctrl.bpi", Tensor({max_arity_}));
  Tensor wv({hidden_, 1});
  nn::glorot_uniform(wv, hidden_, 1, rng);
  wv_ = std::make_shared<nn::Parameter>("ctrl.wv", std::move(wv));
  bv_ = std::make_shared<nn::Parameter>("ctrl.bv", Tensor({1}));
}

void Controller::head_logits(const Tensor& h, std::size_t arity, Tensor& probs) const {
  const std::size_t batch = h.dim(0);
  Tensor logits({batch, max_arity_});
  tensor::gemm(h, wpi_->value, logits);
  tensor::add_row_bias(logits, bpi_->value);
  probs = Tensor({batch, max_arity_});
  for (std::size_t b = 0; b < batch; ++b) {
    masked_softmax_row(logits.data() + b * max_arity_, arity, max_arity_,
                       probs.data() + b * max_arity_);
  }
}

float Controller::head_value(const Tensor& h, std::size_t row) const {
  float v = bv_->value[0];
  for (std::size_t j = 0; j < hidden_; ++j) v += h(row, j) * wv_->value[j];
  return v;
}

Rollout Controller::sample(tensor::Rng& rng) const {
  NCNAS_PROF_SCOPE("rl/sample");
  Rollout roll;
  const std::size_t T = arities_.size();
  roll.actions.reserve(T);
  roll.log_probs.reserve(T);
  roll.values.reserve(T);

  LstmState state = lstm_.initial_state(1);
  std::size_t prev_token = 0;  // start token
  for (std::size_t t = 0; t < T; ++t) {
    Tensor x({1, embed_dim_});
    std::copy(embed_->value.data() + prev_token * embed_dim_,
              embed_->value.data() + (prev_token + 1) * embed_dim_, x.data());
    state = lstm_.step_nograd(x, state);
    Tensor probs;
    head_logits(state.h, arities_[t], probs);
    // Sample from the categorical distribution over valid options.
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t action = arities_[t] - 1;
    for (std::size_t j = 0; j < arities_[t]; ++j) {
      acc += probs(0, j);
      if (u < acc) {
        action = j;
        break;
      }
    }
    roll.actions.push_back(static_cast<std::uint16_t>(action));
    roll.log_probs.push_back(std::log(std::max(probs(0, action), 1e-12f)));
    roll.values.push_back(head_value(state.h, 0));
    prev_token = action + 1;
  }
  return roll;
}

space::ArchEncoding Controller::greedy() const {
  space::ArchEncoding arch;
  const std::size_t T = arities_.size();
  arch.reserve(T);
  LstmState state = lstm_.initial_state(1);
  std::size_t prev_token = 0;
  for (std::size_t t = 0; t < T; ++t) {
    Tensor x({1, embed_dim_});
    std::copy(embed_->value.data() + prev_token * embed_dim_,
              embed_->value.data() + (prev_token + 1) * embed_dim_, x.data());
    state = lstm_.step_nograd(x, state);
    Tensor probs;
    head_logits(state.h, arities_[t], probs);
    const float* row = probs.data();
    const std::size_t action = static_cast<std::size_t>(
        std::max_element(row, row + arities_[t]) - row);
    arch.push_back(static_cast<std::uint16_t>(action));
    prev_token = action + 1;
  }
  return arch;
}

void Controller::set_telemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    ppo_wall_ms_ = nullptr;
    journal_ = nullptr;
    ppo_policy_loss_ = nullptr;
    ppo_value_loss_ = nullptr;
    ppo_entropy_ = nullptr;
    ppo_approx_kl_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics();
  ppo_wall_ms_ = &m.histogram("ncnas_ppo_update_wall_ms", obs::exp_buckets(0.25, 2.0, 16));
  journal_ = telemetry->journal();
  ppo_policy_loss_ = &m.gauge("ncnas_ppo_policy_loss");
  ppo_value_loss_ = &m.gauge("ncnas_ppo_value_loss");
  ppo_entropy_ = &m.gauge("ncnas_ppo_entropy");
  ppo_approx_kl_ = &m.gauge("ncnas_ppo_approx_kl");
}

PpoStats Controller::ppo_update(std::span<const Rollout> rollouts,
                                std::span<const float> rewards, const PpoConfig& cfg,
                                double now, std::uint32_t agent_id) {
  NCNAS_PROF_SCOPE("rl/ppo_update");
  const obs::ScopedTimer timer(ppo_wall_ms_);
  const std::size_t B = rollouts.size();
  const std::size_t T = arities_.size();
  if (B == 0 || rewards.size() != B) {
    throw std::invalid_argument("ppo_update: rollout/reward count mismatch");
  }
  for (const Rollout& r : rollouts) {
    if (r.actions.size() != T || r.log_probs.size() != T || r.values.size() != T) {
      throw std::invalid_argument("ppo_update: rollout length mismatch");
    }
  }
  adam_.set_learning_rate(cfg.learning_rate);

  // Terminal-reward advantages with the critic as state baseline:
  // A_{b,t} = R_b - V_old(s_{b,t}).
  std::vector<float> adv(B * T);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t = 0; t < T; ++t) adv[b * T + t] = rewards[b] - rollouts[b].values[t];
  }
  if (cfg.normalize_advantages && B * T > 1) {
    double mean = 0.0;
    for (float a : adv) mean += a;
    mean /= static_cast<double>(adv.size());
    double var = 0.0;
    for (float a : adv) var += (a - mean) * (a - mean);
    const float stddev = static_cast<float>(std::sqrt(var / static_cast<double>(adv.size())));
    const float inv = stddev > 1e-6f ? 1.0f / stddev : 1.0f;
    for (float& a : adv) a = (a - static_cast<float>(mean)) * inv;
  }

  const float inv_bt = 1.0f / static_cast<float>(B * T);
  PpoStats stats;
  const std::vector<nn::ParamPtr> params = parameters();

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (const nn::ParamPtr& p : params) p->zero_grad();
    lstm_.clear_cache();

    // ---- forward over the batch of recorded action sequences ----
    std::vector<Tensor> probs_t(T), h_t(T);
    std::vector<std::vector<float>> value_t(T, std::vector<float>(B));
    std::vector<std::vector<std::size_t>> token_t(T, std::vector<std::size_t>(B));
    LstmState state = lstm_.initial_state(B);
    for (std::size_t t = 0; t < T; ++t) {
      Tensor x({B, embed_dim_});
      for (std::size_t b = 0; b < B; ++b) {
        const std::size_t token =
            t == 0 ? 0 : static_cast<std::size_t>(rollouts[b].actions[t - 1]) + 1;
        token_t[t][b] = token;
        std::copy(embed_->value.data() + token * embed_dim_,
                  embed_->value.data() + (token + 1) * embed_dim_, x.data() + b * embed_dim_);
      }
      state = lstm_.step(x, state);
      h_t[t] = state.h;
      head_logits(state.h, arities_[t], probs_t[t]);
      for (std::size_t b = 0; b < B; ++b) value_t[t][b] = head_value(state.h, b);
    }

    // ---- loss gradients per step ----
    float policy_loss = 0.0f, value_loss = 0.0f, entropy = 0.0f, approx_kl = 0.0f;
    std::vector<Tensor> dlogits_t(T);
    std::vector<std::vector<float>> dvalue_t(T, std::vector<float>(B, 0.0f));
    for (std::size_t t = 0; t < T; ++t) {
      dlogits_t[t] = Tensor({B, max_arity_});
      const std::size_t arity = arities_[t];
      for (std::size_t b = 0; b < B; ++b) {
        const float* p = probs_t[t].data() + b * max_arity_;
        float* dl = dlogits_t[t].data() + b * max_arity_;
        const std::size_t a = rollouts[b].actions[t];
        const float new_lp = std::log(std::max(p[a], 1e-12f));
        const float old_lp = rollouts[b].log_probs[t];
        const float ratio = std::exp(new_lp - old_lp);
        const float A = adv[b * T + t];
        const float unclipped = ratio * A;
        const float clipped = std::clamp(ratio, 1.0f - cfg.clip, 1.0f + cfg.clip) * A;
        policy_loss -= std::min(unclipped, clipped) * inv_bt;
        approx_kl += (old_lp - new_lp) * inv_bt;
        // Gradient flows through the ratio only when the unclipped branch is
        // the active min (the clipped branch is constant in theta outside
        // the trust region).
        const bool active = unclipped <= clipped;
        const float coef = active ? -A * ratio * inv_bt : 0.0f;
        // d(log pi(a))/d(logit_j) = 1[j==a] - p_j (masked columns have p=0).
        for (std::size_t j = 0; j < arity; ++j) dl[j] = coef * ((j == a ? 1.0f : 0.0f) - p[j]);

        // Entropy bonus: loss -= c_e * H; dH/dlogit_j = -p_j (log p_j + H).
        float H = 0.0f;
        for (std::size_t j = 0; j < arity; ++j) {
          if (p[j] > 1e-12f) H -= p[j] * std::log(p[j]);
        }
        entropy += H * inv_bt;
        for (std::size_t j = 0; j < arity; ++j) {
          if (p[j] > 1e-12f) {
            dl[j] += cfg.entropy_coef * inv_bt * (-p[j] * (std::log(p[j]) + H)) * -1.0f;
          }
        }

        // Value loss: 0.5 * c_v * (V - R)^2.
        const float verr = value_t[t][b] - rewards[b];
        value_loss += 0.5f * cfg.value_coef * verr * verr * inv_bt;
        dvalue_t[t][b] = cfg.value_coef * verr * inv_bt;
      }
    }

    // ---- backward through heads and BPTT ----
    Tensor dh_carry({B, hidden_});
    Tensor dc_carry({B, hidden_});
    for (std::size_t t = T; t-- > 0;) {
      // Heads: dlogits -> Wpi/bpi grads and dh; dvalue -> Wv/bv grads and dh.
      Tensor dh = dh_carry;
      Tensor dwpi({hidden_, max_arity_});
      tensor::gemm_tn(h_t[t], dlogits_t[t], dwpi);
      tensor::add_inplace(wpi_->grad, dwpi);
      tensor::accumulate_col_sums(dlogits_t[t], bpi_->grad);
      Tensor dh_pi({B, hidden_});
      tensor::gemm_nt(dlogits_t[t], wpi_->value, dh_pi);
      tensor::add_inplace(dh, dh_pi);
      for (std::size_t b = 0; b < B; ++b) {
        const float dv = dvalue_t[t][b];
        bv_->grad[0] += dv;
        for (std::size_t j = 0; j < hidden_; ++j) {
          wv_->grad[j] += h_t[t](b, j) * dv;
          dh(b, j) += wv_->value[j] * dv;
        }
      }
      Tensor dh_prev, dc_prev;
      const Tensor dx = lstm_.backward_step(dh, dc_carry, dh_prev, dc_prev);
      // Scatter embedding grads by the tokens fed at step t.
      for (std::size_t b = 0; b < B; ++b) {
        const std::size_t token = token_t[t][b];
        for (std::size_t j = 0; j < embed_dim_; ++j) {
          embed_->grad[token * embed_dim_ + j] += dx(b, j);
        }
      }
      dh_carry = std::move(dh_prev);
      dc_carry = std::move(dc_prev);
    }

    adam_.step(params);
    stats = {policy_loss, value_loss, entropy, approx_kl};
  }
  if (ppo_policy_loss_ != nullptr) {
    ppo_policy_loss_->set(stats.policy_loss);
    ppo_value_loss_->set(stats.value_loss);
    ppo_entropy_->set(stats.entropy);
    ppo_approx_kl_->set(stats.approx_kl);
  }
  if (journal_ != nullptr) {
    journal_->append(obs::JournalEventType::kPpoUpdate, now, agent_id,
                     {{"policy_loss", stats.policy_loss},
                      {"value_loss", stats.value_loss},
                      {"entropy", stats.entropy},
                      {"approx_kl", stats.approx_kl},
                      {"batch", static_cast<double>(B)}});
  }
  return stats;
}

std::size_t Controller::flat_size() const {
  std::size_t total = 0;
  for (const nn::ParamPtr& p : parameters()) total += p->size();
  return total;
}

std::vector<float> Controller::get_flat() const {
  std::vector<float> flat;
  flat.reserve(flat_size());
  for (const nn::ParamPtr& p : parameters()) {
    flat.insert(flat.end(), p->value.flat().begin(), p->value.flat().end());
  }
  return flat;
}

void Controller::set_flat(std::span<const float> flat) {
  std::size_t offset = 0;
  for (const nn::ParamPtr& p : parameters()) {
    if (offset + p->size() > flat.size()) {
      throw std::invalid_argument("Controller::set_flat: vector too short");
    }
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + p->size()),
              p->value.flat().begin());
    offset += p->size();
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("Controller::set_flat: vector size mismatch");
  }
}

Controller::State Controller::save_state() const {
  return {get_flat(), adam_.export_state()};
}

void Controller::load_state(const State& state) {
  set_flat(state.flat);
  adam_.import_state(state.adam);
}

std::vector<nn::ParamPtr> Controller::parameters() const {
  std::vector<nn::ParamPtr> out{embed_};
  const auto lstm_params = lstm_.parameters();
  out.insert(out.end(), lstm_params.begin(), lstm_params.end());
  out.push_back(wpi_);
  out.push_back(bpi_);
  out.push_back(wv_);
  out.push_back(bv_);
  return out;
}

}  // namespace ncnas::rl
